#include "pipeline/sim_pipeline.hpp"

#include <chrono>
#include <map>

#include "core/boundary.hpp"
#include "core/lower_star.hpp"
#include "core/merge.hpp"
#include "decomp/decompose.hpp"
#include "integrity/integrity.hpp"
#include "io/complex_file.hpp"
#include "merge/reduce.hpp"
#include "merge/shard.hpp"
#include "metrics/metrics.hpp"
#include "prof/prof.hpp"

namespace msc::pipeline {

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ABFT commit gates, mirroring the threaded driver (and inlined for
/// the same layering reason: check depends on pipeline, so pipeline
/// cannot call check::checkEuler). With cfg.integrity off both cost
/// nothing; the sequential driver has no wire to checksum, so these
/// identities ARE its integrity surface.
bool eulerOk(const MsComplex& c) {
  const auto counts = c.liveNodeCounts();
  return counts[0] - counts[1] + counts[2] - counts[3] == 1;
}

void checkComputeIdentity(const PipelineConfig& cfg) {
  metrics::Registry* const reg = cfg.metrics;
  if (!cfg.integrity || !reg) return;
  using metrics::Counter;
  for (int rank = 0; rank < cfg.nranks; ++rank) {
    const std::int64_t cells = reg->counter(rank, Counter::kGradCells);
    const std::int64_t pairs = reg->counter(rank, Counter::kGradPairs);
    const std::int64_t crits = reg->counter(rank, Counter::kGradCriticals);
    if (2 * pairs + crits != cells)
      throw integrity::IntegrityError(
          "compute identity violated on rank " + std::to_string(rank) +
          ": 2*pairs + criticals != cells (pairs " + std::to_string(pairs) +
          ", criticals " + std::to_string(crits) + ", cells " +
          std::to_string(cells) + ")");
  }
}

/// One surviving complex during the merge rounds.
struct ActiveSet {
  int root_block;
  int owner_rank;
  MsComplex complex;
  std::int64_t packed_bytes;
};

/// The distributed final round (merge/shard.hpp), executed for real:
/// every survivor's complex is replaced in place by the part it owns,
/// and the round is recorded as one group per survivor so the
/// timeline sees `groups > 1` with skeleton/bundle-sized messages
/// instead of one root swallowing the whole complex. Message and
/// timing attribution mirrors the threaded driver: each *owner rank*
/// receives every foreign skeleton once and runs the replicated graph
/// merge once (charged to its first group); per-survivor groups
/// additionally carry their own blob build, bundle pack/unpack and
/// materialization.
std::vector<simnet::GroupRecord> runShardedRound(const PipelineConfig& cfg,
                                                 std::vector<ActiveSet>& active) {
  const int S = static_cast<int>(active.size());
  std::vector<double> local_work(static_cast<std::size_t>(S), 0.0);

  // First group owned by each rank: rank-wide costs are charged there.
  std::map<int, std::size_t> first_of_rank;
  for (std::size_t i = 0; i < active.size(); ++i)
    first_of_rank.emplace(active[i].owner_rank, i);

  // Phase 0: pre-merge reduction. Position 0 is the baseline root; it
  // never ships in the single-root schedule, so it is not reduced --
  // keeping the sharded output byte-comparable to that baseline.
  if (cfg.premerge) {
    for (int i = 1; i < S; ++i) {
      const double t0 = now();
      merge::reduceForShip(active[static_cast<std::size_t>(i)].complex,
                           cfg.persistence_threshold, cfg.metrics,
                           active[static_cast<std::size_t>(i)].owner_rank);
      local_work[static_cast<std::size_t>(i)] += now() - t0;
    }
  }

  // Phase 1: skeleton blobs (the allgather payloads).
  std::vector<io::Bytes> blobs(static_cast<std::size_t>(S));
  for (int i = 0; i < S; ++i) {
    const ActiveSet& a = active[static_cast<std::size_t>(i)];
    const double t0 = now();
    blobs[static_cast<std::size_t>(i)] = merge::makeShardBlob(
        a.complex, i, merge::priorCoveredRegion(cfg.domain, cfg.nblocks, a.root_block));
    local_work[static_cast<std::size_t>(i)] += now() - t0;
    metrics::add(cfg.metrics, a.owner_rank, metrics::Counter::kPackBytes,
                 static_cast<std::int64_t>(blobs[static_cast<std::size_t>(i)].size()));
  }

  // Phase 2: the replicated graph merge. Executed once here; in the
  // threaded driver every owner rank replays it identically, so its
  // cost is charged to each rank's first group below.
  const prof::ThreadBind prof_bind(cfg.profiler, active[0].owner_rank);
  MSC_PROF_POINT("shard_merge");
  const double t_replica0 = now();
  std::vector<merge::ShardSkeleton> parts;
  parts.reserve(static_cast<std::size_t>(S));
  for (const io::Bytes& b : blobs) parts.push_back(merge::parseShardBlob(b));
  const MsComplex merged =
      merge::mergeShardSkeletons(std::move(parts), cfg.persistence_threshold,
                                 cfg.metrics, active[0].owner_rank);
  const merge::ShardPlanView plan = merge::buildShardPlan(merged);
  const double t_replica = now() - t_replica0;

  // Phase 3: geometry bundles + materialization, through the same
  // pack/unpack wire path the threaded driver uses.
  std::vector<std::vector<std::int64_t>> bundle_bytes(
      static_cast<std::size_t>(S), std::vector<std::int64_t>(static_cast<std::size_t>(S), 0));
  std::vector<MsComplex> outputs(static_cast<std::size_t>(S));
  for (int d = 0; d < S; ++d) {
    merge::ShardPathServer server;
    server.addLocal(d, &active[static_cast<std::size_t>(d)].complex);
    for (int src = 0; src < S; ++src) {
      if (src == d) continue;
      const double t0 = now();
      io::Bytes bundle = merge::packPathBundle(
          active[static_cast<std::size_t>(src)].complex,
          merge::shardNeededPaths(plan, S, d, src));
      bundle_bytes[static_cast<std::size_t>(src)][static_cast<std::size_t>(d)] =
          static_cast<std::int64_t>(bundle.size());
      metrics::add(cfg.metrics, active[static_cast<std::size_t>(src)].owner_rank,
                   metrics::Counter::kPackBytes,
                   static_cast<std::int64_t>(bundle.size()));
      local_work[static_cast<std::size_t>(src)] += now() - t0;
      const double t1 = now();
      server.addRemote(src, merge::unpackPathBundle(bundle));
      local_work[static_cast<std::size_t>(d)] += now() - t1;
    }
    const double t2 = now();
    outputs[static_cast<std::size_t>(d)] =
        merge::materializeShardPart(merged, plan, S, d, server);
    local_work[static_cast<std::size_t>(d)] += now() - t2;
  }

  // Record one group per survivor and install the parts.
  std::vector<simnet::GroupRecord> recs;
  recs.reserve(static_cast<std::size_t>(S));
  for (int i = 0; i < S; ++i) {
    ActiveSet& a = active[static_cast<std::size_t>(i)];
    simnet::GroupRecord rec;
    rec.root_rank = a.owner_rank;
    const bool first = first_of_rank.at(a.owner_rank) == static_cast<std::size_t>(i);
    for (int j = 0; j < S; ++j) {
      if (j == i) continue;
      const ActiveSet& peer = active[static_cast<std::size_t>(j)];
      if (peer.owner_rank == a.owner_rank) continue;  // co-located: no message
      if (first)
        rec.sends.emplace_back(peer.owner_rank,
                               static_cast<std::int64_t>(blobs[static_cast<std::size_t>(j)].size()));
      rec.sends.emplace_back(peer.owner_rank,
                             bundle_bytes[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)]);
    }
    rec.merge_seconds = local_work[static_cast<std::size_t>(i)] + (first ? t_replica : 0.0);
    a.complex = std::move(outputs[static_cast<std::size_t>(i)]);
    a.packed_bytes = static_cast<std::int64_t>(io::packedSize(a.complex));
    recs.push_back(std::move(rec));
  }
  return recs;
}

}  // namespace

SimResult runSimPipeline(const PipelineConfig& user_cfg, const SimModels& models) {
  const PipelineConfig cfg = withEnvOverrides(user_cfg);
  validatePipelineConfig(cfg);
  prof::noteTotalRounds(cfg.profiler, cfg.plan.rounds());
  const double t_start = now();
  SimResult res;

  const std::vector<Block> blocks = decompose(cfg.domain, cfg.nblocks);
  simnet::TimelineInputs& in = res.inputs;
  in.nranks = cfg.nranks;
  in.input_bytes =
      cfg.domain.vdims.volume() *
      static_cast<std::int64_t>(io::sampleSize(cfg.source.sample_type));
  in.compute_per_rank.assign(static_cast<std::size_t>(cfg.nranks), 0.0);
  in.merge_prep_per_rank.assign(static_cast<std::size_t>(cfg.nranks), 0.0);

  // --- Compute stage (Fig. 3 (b)-(c)) + local merge prep ((d)-(e)).
  std::vector<ActiveSet> active;
  active.reserve(blocks.size());
  for (const Block& blk : blocks) {
    const int owner = blk.id % cfg.nranks;
    // The sequential driver executes every simulated rank's work on
    // this one thread; re-binding per block attributes each block's
    // kernel-phase frames to its owner rank's stack.
    const prof::ThreadBind prof_bind(cfg.profiler, owner);
    MSC_PROF_POINT("compute");
    const BlockField bf = cfg.source.volume_path
                              ? io::readBlock(*cfg.source.volume_path, blk,
                                              cfg.source.sample_type)
                              : synth::sample(blk, cfg.source.field);
    double t0 = now();
    GradientOptions gopts;
    gopts.restrict_boundary = cfg.nblocks > 1;
    // Same exact boundary-pairing rule as computeBlockComplex: the
    // sequential driver must stay bit-identical to the threaded one.
    BoundarySignatures sigs;
    if (cfg.nblocks > 1) {
      sigs = BoundarySignatures(blocks, blk);
      gopts.signatures = &sigs;
    }
    gopts.metrics = cfg.metrics;
    gopts.metrics_rank = owner;
    const GradientField grad = cfg.algorithm == GradientAlgorithm::kSweep
                                   ? computeGradientSweep(bf, gopts)
                                   : computeGradientLowerStar(bf, gopts);
    TraceOptions topts = cfg.trace;
    topts.metrics = cfg.metrics;
    topts.metrics_rank = owner;
    MsComplex c = traceComplex(grad, bf, topts);
    in.compute_per_rank[static_cast<std::size_t>(owner)] += now() - t0;

    t0 = now();
    SimplifyOptions sopts;
    sopts.persistence_threshold = cfg.persistence_threshold;
    sopts.metrics = cfg.metrics;
    sopts.metrics_rank = owner;
    simplify(c, sopts);
    c.compact();
    const std::int64_t bytes = static_cast<std::int64_t>(io::packedSize(c));
    in.merge_prep_per_rank[static_cast<std::size_t>(owner)] += now() - t0;

    active.push_back({blk.id, owner, std::move(c), bytes});
  }
  checkComputeIdentity(cfg);

  // --- Merge rounds (Fig. 3 (d)-(f) repeated).
  for (int r = 0; r < cfg.plan.rounds(); ++r) {
    const auto groups = cfg.plan.round(r, static_cast<int>(active.size()));
    const bool sharded_here = cfg.sharded_final && r == cfg.plan.rounds() - 1 &&
                              groups.size() == 1 && active.size() > 1;
    if (sharded_here) {
      in.rounds.push_back(runShardedRound(cfg, active));
      continue;  // every survivor keeps (its part of) the complex
    }
    std::vector<ActiveSet> next;
    std::vector<simnet::GroupRecord> recs;
    next.reserve(groups.size());
    for (const MergeGroup& g : groups) {
      ActiveSet& root = active[static_cast<std::size_t>(g.root)];
      const prof::ThreadBind prof_bind(cfg.profiler, root.owner_rank);
      MSC_PROF_POINT("merge_round");
      prof::noteRound(cfg.profiler, root.owner_rank, r);
      simnet::GroupRecord rec;
      rec.root_rank = root.owner_rank;
      const double t0 = now();
      for (std::size_t m = 1; m < g.members.size(); ++m) {
        ActiveSet& member = active[static_cast<std::size_t>(g.members[m])];
        if (cfg.premerge) {
          // Member-side work, so it belongs on the member's rank; the
          // per-round timeline has no member-compute slot, so it lands
          // in the merge-prep stage (same rank, same total).
          const double p0 = now();
          merge::reduceForShip(member.complex, cfg.persistence_threshold,
                               cfg.metrics, member.owner_rank);
          member.packed_bytes = static_cast<std::int64_t>(io::packedSize(member.complex));
          in.merge_prep_per_rank[static_cast<std::size_t>(member.owner_rank)] +=
              now() - p0;
        }
        // Same Euler pre-commit gate the threaded driver applies to
        // every incoming member before it votes a round good.
        if (cfg.integrity && !eulerOk(member.complex))
          throw integrity::IntegrityError(
              "Euler gate failed for block " + std::to_string(member.root_block) +
              " entering merge round " + std::to_string(r));
        rec.sends.emplace_back(member.owner_rank, member.packed_bytes);
        // Pack bytes are charged to the sending member's rank, as in
        // the threaded driver's send phase.
        metrics::add(cfg.metrics, member.owner_rank, metrics::Counter::kPackBytes,
                     member.packed_bytes);
        glue(root.complex, std::move(member.complex), nullptr, cfg.metrics,
             root.owner_rank);
        member.complex = MsComplex();  // free early
      }
      finishMerge(root.complex, cfg.persistence_threshold, nullptr, cfg.metrics,
                  root.owner_rank);
      root.complex.compact();
      root.packed_bytes = static_cast<std::int64_t>(io::packedSize(root.complex));
      rec.merge_seconds = now() - t0;
      recs.push_back(std::move(rec));
      next.push_back(std::move(root));
    }
    in.rounds.push_back(std::move(recs));
    active = std::move(next);
  }

  // --- Write stage.
  for (ActiveSet& a : active) {
    io::Bytes b = io::pack(a.complex);
    metrics::add(cfg.metrics, a.owner_rank, metrics::Counter::kPackBytes,
                 static_cast<std::int64_t>(b.size()));
    res.output_bytes += static_cast<std::int64_t>(b.size());
    const auto counts = a.complex.liveNodeCounts();
    for (int i = 0; i < 4; ++i) res.node_counts[static_cast<std::size_t>(i)] += counts[i];
    res.arc_count += a.complex.liveArcCount();
    res.outputs.push_back(std::move(b));
  }
  in.output_bytes = res.output_bytes;
  if (!cfg.output_path.empty()) io::writeComplexFile(cfg.output_path, res.outputs);

  const simnet::TorusModel net(simnet::Torus::fit(cfg.nranks), models.net);
  const simnet::IoModel io(models.io);
  // When observability is on, the reconstruction doubles as a trace
  // generator: the simulated schedule lands on cfg.tracer with
  // model-time timestamps, one track per simulated rank. A causal
  // recorder likewise gets a synthesized journal of the same
  // schedule, so msc_critpath works on simulated runs.
  res.times = simnet::reconstruct(in, net, io, models.scale, cfg.tracer, cfg.causal);
  res.serial_seconds = now() - t_start;
  return res;
}

}  // namespace msc::pipeline
