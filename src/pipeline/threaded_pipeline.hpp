/// \file threaded_pipeline.hpp
/// The concurrent pipeline driver: Algorithm 1 executed by real
/// ranks (threads) over the message-passing runtime, exercising the
/// same pack -> send -> recv -> unpack -> glue paths a distributed
/// MPI run performs. Used for end-to-end integration testing and the
/// examples; timing studies at scale use the simulated driver.
#pragma once

#include "pipeline/config.hpp"
#include "simnet/timeline.hpp"

namespace msc::pipeline {

struct ThreadedResult {
  /// Packed final complexes, in survivor order (gathered at rank 0).
  std::vector<io::Bytes> outputs;
  /// Measured wall-clock stage times (read/sample, compute,
  /// merge rounds, write). Best-effort when ranks were respawned.
  simnet::StageTimes times;
  std::array<std::int64_t, 4> node_counts{};
  std::int64_t arc_count{0};
  std::int64_t output_bytes{0};

  /// Recovery accounting, populated when the run used the recovery
  /// driver (an injector attached or a recovery mode enabled); all
  /// zero on the fault-free path.
  struct RecoveryStats {
    std::int64_t respawns{0};           ///< rank deaths survived in place
    std::int64_t round_replays{0};      ///< attempts rolled back (per rank)
    std::int64_t reassigned_blocks{0};  ///< block restores onto a non-home rank
    std::int64_t drained_messages{0};   ///< stale/duplicate frames swept post-vote
    std::int64_t checkpoint_puts{0};
    std::int64_t checkpoint_restores{0};
    std::int64_t faults_injected{0};    ///< injector faults that fired
  };
  RecoveryStats recovery;

  /// Integrity accounting, populated when cfg.integrity is on; all
  /// zero otherwise (checksummed framing fully disabled).
  struct IntegrityStats {
    std::int64_t frames_verified{0};  ///< frames whose checksum passed
    std::int64_t frames_dropped{0};   ///< corrupt frames detected + dropped
    std::int64_t heals{0};            ///< detected corruptions repaired
                                      ///< (resent frame, disk re-fetch,
                                      ///< or block recompute)
  };
  IntegrityStats integrity;
};

/// Run the pipeline on cfg.nranks concurrent ranks.
ThreadedResult runThreadedPipeline(const PipelineConfig& cfg);

}  // namespace msc::pipeline
