/// \file threaded_pipeline.hpp
/// The concurrent pipeline driver: Algorithm 1 executed by real
/// ranks (threads) over the message-passing runtime, exercising the
/// same pack -> send -> recv -> unpack -> glue paths a distributed
/// MPI run performs. Used for end-to-end integration testing and the
/// examples; timing studies at scale use the simulated driver.
#pragma once

#include "pipeline/config.hpp"
#include "simnet/timeline.hpp"

namespace msc::pipeline {

struct ThreadedResult {
  /// Packed final complexes, in survivor order (gathered at rank 0).
  std::vector<io::Bytes> outputs;
  /// Measured wall-clock stage times (read/sample, compute,
  /// merge rounds, write).
  simnet::StageTimes times;
  std::array<std::int64_t, 4> node_counts{};
  std::int64_t arc_count{0};
  std::int64_t output_bytes{0};
};

/// Run the pipeline on cfg.nranks concurrent ranks.
ThreadedResult runThreadedPipeline(const PipelineConfig& cfg);

}  // namespace msc::pipeline
