/// \file config.hpp
/// Shared configuration of the end-to-end pipeline drivers
/// (Algorithm 1): domain, data source, decomposition, simplification
/// threshold, gradient algorithm, and merge plan.
#pragma once

#include <optional>
#include <string>

#include "core/simplify.hpp"
#include "core/trace.hpp"
#include "fault/recovery.hpp"
#include "io/pack.hpp"
#include "io/volume.hpp"
#include "merge/plan.hpp"
#include "obs/obs.hpp"
#include "synth/fields.hpp"

namespace msc::audit {
class Auditor;
}
namespace msc::causal {
class Recorder;
}
namespace msc::fault {
class Injector;
}
namespace msc::metrics {
class Registry;
}
namespace msc::prof {
class Profiler;
}

namespace msc::pipeline {

enum class GradientAlgorithm {
  kSweep,      ///< the paper's greedy steepest-descent sweep (ref [10])
  kLowerStar,  ///< per-vertex lower-star matching (default: fewer
               ///< spurious criticals, same boundary consistency)
};

/// Where block samples come from.
struct DataSource {
  /// Analytic field (evaluated lazily per block; the common case for
  /// the studies -- no full-volume allocation ever happens).
  synth::Field field;
  /// If set, blocks are instead read from this raw volume file with
  /// the paper's subarray access pattern.
  std::optional<std::string> volume_path;
  io::SampleType sample_type = io::SampleType::kFloat32;
};

/// Fault injection and recovery policy for the threaded driver. With
/// no injector and recovery off (the defaults) the driver takes the
/// original fault-free code path untouched.
struct FaultToleranceConfig {
  /// Deterministic fault injector (non-owning; must outlive the run).
  /// Null = no faults. Injection is scoped to the merge rounds' data
  /// sends/receives; votes, drains, barriers and the write phase are
  /// the reliable control channel.
  fault::Injector* injector{nullptr};
  /// What happens when a rank dies. kOff requires an attached auditor
  /// when an injector is present, so a crash surfaces as a structured
  /// error instead of a hang.
  fault::RecoveryMode recovery{fault::RecoveryMode::kOff};
  /// Merge-round receive deadline: how long a root waits for one
  /// member complex before voting the attempt failed.
  double recv_deadline_seconds{5.0};
  /// Exponential wake-up backoff inside a deadline-bounded receive.
  double backoff_initial_ms{0.2};
  double backoff_max_ms{10.0};
  /// Replay budget per merge round (attempt tags need 1..64).
  int max_round_attempts{16};
  /// Respawn budget per rank; must cover the injector's per-rank
  /// crash cap or a run can die with retries still owed.
  int max_respawns_per_rank{8};
  /// Cap on in-attempt re-requests of dropped (corrupt) merge frames
  /// per rank per round attempt. Exhausting the budget falls back to
  /// the attempt deadline -> vote-fail -> replay path, so the cap
  /// bounds latency, never correctness. Only meaningful with
  /// PipelineConfig::integrity on.
  int corruption_retry_budget{8};
  /// Non-empty: checkpoints are also spilled to this directory (the
  /// durable medium a cross-process restart would restore from).
  std::string checkpoint_dir;
};

struct PipelineConfig {
  Domain domain;
  DataSource source;
  int nblocks{1};
  int nranks{1};
  float persistence_threshold{0.0f};
  MergePlan plan;  ///< empty plan = no merging (write local complexes)
  GradientAlgorithm algorithm = GradientAlgorithm::kLowerStar;
  TraceOptions trace;
  /// Optional output file (the IV-G container); empty = skip writing.
  std::string output_path;
  /// Observability: when non-null (non-owning; must outlive the run
  /// and have >= nranks slots), both drivers record per-rank spans
  /// for every stage of Algorithm 1 plus comm/byte counters. Null
  /// (the default) keeps the zero-overhead path.
  obs::Tracer* tracer{nullptr};
  /// Protocol auditing: when non-null (non-owning; must outlive the
  /// run and have >= nranks slots), the threaded driver's runtime is
  /// audited -- deadlocks, mismatched collectives, mailbox leaks and
  /// cross-rank buffer frees raise audit::AuditError instead of
  /// hanging or corrupting. Null (the default) keeps the
  /// one-branch-per-op path. The simulated driver has no real
  /// communication, so the knob only affects runThreadedPipeline.
  audit::Auditor* auditor{nullptr};
  /// Causal tracing: when non-null (non-owning; must outlive the run
  /// and have >= nranks slots), the threaded driver piggybacks vector
  /// clocks on every message and journals sends/recvs/barriers/
  /// collectives plus stage and round boundaries; the simulated
  /// driver synthesizes the same journal from the reconstructed
  /// schedule. Feed the journal to causal::analyzeCriticalPath (or
  /// tools/msc_critpath) for the per-stage/per-round blame table.
  /// With a tracer also attached, every message adds a Chrome-trace
  /// flow-event pair, so the exported trace shows cross-rank arrows.
  /// Null (the default) keeps the one-branch-per-op path; pipeline
  /// output bytes are identical either way.
  causal::Recorder* causal{nullptr};
  /// Work/memory metrics: when non-null (non-owning; must outlive
  /// the run and have >= nranks slots), both drivers flush per-kernel
  /// work counters (cells, pairs, V-path steps, arcs, cancellations,
  /// glue/dedup counts), pack/checkpoint byte footprints, and -- in
  /// the threaded driver -- per-rank allocator telemetry sampled at
  /// stage boundaries into the registry. With a tracer also attached,
  /// the same samples land on named Chrome-trace counter tracks.
  /// Null (the default) keeps the one-branch-per-op path; pipeline
  /// output bytes are identical either way.
  metrics::Registry* metrics{nullptr};
  /// Sampling profiler (src/prof): when non-null (non-owning; must
  /// outlive the run and have >= nranks slots), both drivers bind
  /// each rank's thread to the profiler so obs spans and
  /// MSC_PROF_POINT kernel-phase markers maintain per-rank live span
  /// stacks, and publish round-progress cells for the heartbeat
  /// reporter. The caller owns the sampler thread lifecycle
  /// (startSampler/stopSampler around the run). Null (the default)
  /// keeps the one-branch-per-op path; pipeline output bytes are
  /// identical either way.
  prof::Profiler* profiler{nullptr};
  /// Pre-merge reduction (merge/reduce.hpp): before a member complex
  /// is packed for a merge round, run a zero/low-persistence
  /// cancellation sweep and compress duplicate junction cells out of
  /// its V-path geometry. Output is canonical-equal -- not
  /// byte-equal -- to a premerge-off run (the dropped duplicates
  /// never survive canonicalization). Default off: prior baselines
  /// stay byte-identical.
  bool premerge{false};
  /// Distributed final merge (merge/shard.hpp): when the plan's last
  /// round funnels every survivor into a single root, run the
  /// skeleton-allgather / replicated-graph-merge / owner-partitioned
  /// geometry exchange instead. The final survivors each keep one
  /// output part whose union is canonical-equal to the single-root
  /// output; the written container holds that many parts instead of
  /// one. Default off.
  bool sharded_final{false};
  /// End-to-end integrity checking (msc::integrity): every par::Comm
  /// data frame gains a checksummed trailer verified at the receiver,
  /// checkpoints and disk spills are stored in checksummed containers
  /// (torn writes detected on restore), and the threaded driver adds
  /// ABFT-style commit gates per merge round (per-rank counter
  /// identity when metrics are attached, per-member Euler
  /// characteristic pre-vote). Detected corruption heals through the
  /// existing recovery machinery (frame re-request, disk re-fetch,
  /// block recompute, attempt replay); unrecoverable states throw
  /// integrity::IntegrityError -- never a hang. Default off: zero
  /// overhead, wire/stored bytes unchanged.
  bool integrity{false};
  /// Watchdog promoted from audit::Options: a rank blocked longer
  /// than this fails an audited run. The threaded driver applies it
  /// to the attached auditor, replacing the hard-coded 30 s.
  double block_timeout_seconds{30.0};
  /// Fault injection + recovery (threaded driver only).
  FaultToleranceConfig fault;
};

/// A copy of `cfg` with environment overrides applied:
///   MSC_BLOCK_TIMEOUT        -> block_timeout_seconds
///   MSC_RECV_DEADLINE        -> fault.recv_deadline_seconds
///   MSC_BACKOFF_INITIAL_MS   -> fault.backoff_initial_ms
///   MSC_BACKOFF_MAX_MS       -> fault.backoff_max_ms
///   MSC_MAX_ROUND_ATTEMPTS   -> fault.max_round_attempts
///   MSC_PREMERGE             -> premerge (0/1)
///   MSC_SHARDED_FINAL        -> sharded_final (0/1)
///   MSC_INTEGRITY            -> integrity (0/1)
///   MSC_CORRUPTION_RETRY_BUDGET -> fault.corruption_retry_budget
/// Unset variables leave the field untouched; an unparsable value
/// throws std::invalid_argument naming the variable.
PipelineConfig withEnvOverrides(const PipelineConfig& cfg);

/// Reject invalid configurations with a std::invalid_argument whose
/// message names the offending knob: non-positive block/timeout
/// values, nranks > nblocks, backoff inversions, attempt budgets
/// outside [1, 64], a recovery mode without a respawn budget, fault
/// injection with recovery off and no auditor attached, a
/// corruption-retry budget outside [0, 1024], or corruption-fault
/// rates with integrity checking off (the injected flips would be
/// silently wrong answers, which is never what a test means). Both
/// drivers call this (after env overrides) before running.
void validatePipelineConfig(const PipelineConfig& cfg);

/// Compute one block's complex from already-loaded samples:
/// gradient, trace, simplify, leaving the complex compacted to the
/// living elements (IV-F1 cleanup). Shared by both drivers and tests.
/// When cfg.tracer is set, `obs_rank` selects the track the
/// gradient/trace/simplify+pack sub-spans are recorded on.
MsComplex computeBlockComplex(const PipelineConfig& cfg, const BlockField& field,
                              TraceStats* tstats = nullptr,
                              SimplifyStats* sstats = nullptr, int obs_rank = 0);

/// Convenience overload: sample/read the block first.
MsComplex computeBlockComplex(const PipelineConfig& cfg, const Block& block,
                              TraceStats* tstats = nullptr,
                              SimplifyStats* sstats = nullptr, int obs_rank = 0);

}  // namespace msc::pipeline
