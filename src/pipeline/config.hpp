/// \file config.hpp
/// Shared configuration of the end-to-end pipeline drivers
/// (Algorithm 1): domain, data source, decomposition, simplification
/// threshold, gradient algorithm, and merge plan.
#pragma once

#include <optional>
#include <string>

#include "core/simplify.hpp"
#include "core/trace.hpp"
#include "io/pack.hpp"
#include "io/volume.hpp"
#include "merge/plan.hpp"
#include "obs/obs.hpp"
#include "synth/fields.hpp"

namespace msc::audit {
class Auditor;
}

namespace msc::pipeline {

enum class GradientAlgorithm {
  kSweep,      ///< the paper's greedy steepest-descent sweep (ref [10])
  kLowerStar,  ///< per-vertex lower-star matching (default: fewer
               ///< spurious criticals, same boundary consistency)
};

/// Where block samples come from.
struct DataSource {
  /// Analytic field (evaluated lazily per block; the common case for
  /// the studies -- no full-volume allocation ever happens).
  synth::Field field;
  /// If set, blocks are instead read from this raw volume file with
  /// the paper's subarray access pattern.
  std::optional<std::string> volume_path;
  io::SampleType sample_type = io::SampleType::kFloat32;
};

struct PipelineConfig {
  Domain domain;
  DataSource source;
  int nblocks{1};
  int nranks{1};
  float persistence_threshold{0.0f};
  MergePlan plan;  ///< empty plan = no merging (write local complexes)
  GradientAlgorithm algorithm = GradientAlgorithm::kLowerStar;
  TraceOptions trace;
  /// Optional output file (the IV-G container); empty = skip writing.
  std::string output_path;
  /// Observability: when non-null (non-owning; must outlive the run
  /// and have >= nranks slots), both drivers record per-rank spans
  /// for every stage of Algorithm 1 plus comm/byte counters. Null
  /// (the default) keeps the zero-overhead path.
  obs::Tracer* tracer{nullptr};
  /// Protocol auditing: when non-null (non-owning; must outlive the
  /// run and have >= nranks slots), the threaded driver's runtime is
  /// audited -- deadlocks, mismatched collectives, mailbox leaks and
  /// cross-rank buffer frees raise audit::AuditError instead of
  /// hanging or corrupting. Null (the default) keeps the
  /// one-branch-per-op path. The simulated driver has no real
  /// communication, so the knob only affects runThreadedPipeline.
  audit::Auditor* auditor{nullptr};
};

/// Compute one block's complex from already-loaded samples:
/// gradient, trace, simplify, leaving the complex compacted to the
/// living elements (IV-F1 cleanup). Shared by both drivers and tests.
/// When cfg.tracer is set, `obs_rank` selects the track the
/// gradient/trace/simplify+pack sub-spans are recorded on.
MsComplex computeBlockComplex(const PipelineConfig& cfg, const BlockField& field,
                              TraceStats* tstats = nullptr,
                              SimplifyStats* sstats = nullptr, int obs_rank = 0);

/// Convenience overload: sample/read the block first.
MsComplex computeBlockComplex(const PipelineConfig& cfg, const Block& block,
                              TraceStats* tstats = nullptr,
                              SimplifyStats* sstats = nullptr, int obs_rank = 0);

}  // namespace msc::pipeline
