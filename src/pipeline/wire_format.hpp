/// \file wire_format.hpp
/// Message framing shared by the threaded pipeline's merge and write
/// phases: [u32 dest_block_id][u32 sender_block_id][payload].
///
/// The sender id lets roots glue members in deterministic (block id)
/// order regardless of message arrival order, so the merged complex
/// is bit-identical to the simulated driver's. The recovery layer
/// additionally keys duplicate suppression on (dest, sender).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "io/pack.hpp"
#include "par/comm.hpp"

namespace msc::pipeline {

inline constexpr std::size_t kFrameHeader = 2 * sizeof(std::uint32_t);

inline par::Bytes frame(int dest_block, int sender_block, const io::Bytes& packed) {
  par::Bytes out(kFrameHeader + packed.size());
  const auto d = static_cast<std::uint32_t>(dest_block);
  const auto s = static_cast<std::uint32_t>(sender_block);
  std::memcpy(out.data(), &d, sizeof(d));
  std::memcpy(out.data() + sizeof(d), &s, sizeof(s));
  std::memcpy(out.data() + kFrameHeader, packed.data(), packed.size());
  return out;
}

struct Framed {
  int dest_block;
  int sender_block;
  io::Bytes packed;
};

/// Throws std::runtime_error on a frame too short to hold its header
/// (a truncated or foreign message must never be memcpy'd blind).
inline Framed unframe(const par::Bytes& in) {
  if (in.size() < kFrameHeader)
    throw std::runtime_error("pipeline::unframe: frame of " + std::to_string(in.size()) +
                             " bytes is shorter than the " + std::to_string(kFrameHeader) +
                             "-byte header");
  std::uint32_t d = 0, s = 0;
  std::memcpy(&d, in.data(), sizeof(d));
  std::memcpy(&s, in.data() + sizeof(d), sizeof(s));
  io::Bytes packed(in.begin() + static_cast<std::ptrdiff_t>(kFrameHeader), in.end());
  return {static_cast<int>(d), static_cast<int>(s), std::move(packed)};
}

}  // namespace msc::pipeline
