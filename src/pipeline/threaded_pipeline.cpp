#include "pipeline/threaded_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "audit/audit.hpp"
#include "causal/causal.hpp"
#include "core/annotations.hpp"
#include "core/merge.hpp"
#include "decomp/decompose.hpp"
#include "fault/inject.hpp"
#include "fault/recovery.hpp"
#include "integrity/integrity.hpp"
#include "io/complex_file.hpp"
#include "merge/reduce.hpp"
#include "merge/shard.hpp"
#include "metrics/metrics.hpp"
#include "obs/obs.hpp"
#include "par/comm.hpp"
#include "pipeline/wire_format.hpp"
#include "prof/prof.hpp"

namespace msc::pipeline {

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Rank 0 fills the run's result from inside its rank lambda; the
/// driver epilogue and the caller read it after Runtime::run joins.
/// The mutex makes that handoff an explicit, checkable contract
/// (lockset pass / TSA) instead of an implicit property of the join.
struct GuardedResult {
  std::mutex mu;
  ThreadedResult value MSC_GUARDED_BY(mu);
};

constexpr int kTagMergeBase = 100;  // + round (fault-free driver)
// Used by both drivers, so it must be disjoint from both tag spaces.
// msc-analyze: tag-space(plain, recovery)
constexpr int kTagWrite = 50;

/// The sharded final round has a second message phase (geometry
/// bundles after the skeleton allgather); it gets its own tag space so
/// a bundle can never be mistaken for a skeleton. Fault-free driver:
/// kTagShardGeomBase + round. The recovery driver qualifies by attempt
/// (below), in a band far above any mergeTag() value.
constexpr int kTagShardGeomBase = 1000;  // + round (fault-free driver)

/// The recovery driver qualifies merge tags by attempt so a replayed
/// round can never consume a failed attempt's stragglers:
/// tag = kTagMergeBase + round * kAttemptStride + attempt. The stride
/// bounds max_round_attempts (validated to [1, 64]); the fault-free
/// driver keeps the original kTagMergeBase + round tags untouched.
constexpr int kAttemptStride = 64;

// msc-analyze: tag-space(recovery): round in [0,64), attempt in [0,64)
int mergeTag(int round, int attempt) {
  return kTagMergeBase + round * kAttemptStride + attempt;
}

/// Attempt-qualified tag for the sharded round's geometry bundles.
/// The 10000 base keeps it clear of every mergeTag() value.
// msc-analyze: tag-space(recovery): round in [0,64), attempt in [0,64)
int shardGeomTag(int round, int attempt) {
  return 10000 + round * kAttemptStride + attempt;
}

/// Attempt-qualified tag for integrity re-requests: a root that
/// detected a corrupt (dropped) merge frame asks the sender's owner
/// to re-ship one (root, sender) pair within the same attempt. The
/// 20000 base keeps the band clear of every mergeTag() and
/// shardGeomTag() value.
// msc-analyze: tag-space(recovery): round in [0,64), attempt in [0,64)
int nackTag(int round, int attempt) {
  return 20000 + round * kAttemptStride + attempt;
}

/// One-shot arming of the runtime's transit-corruption hook: the
/// injector decides kCorruptPayload at a send site, the hook then
/// flips one bit of the next fully framed message this thread sends
/// (after the integrity trailer -- exactly what a flaky link would
/// corrupt). thread_local because the hook runs on the sending
/// rank's thread, between the arm and the send it guards.
struct TransitArm {
  bool armed = false;
  std::uint64_t salt = 0;
};
TransitArm& transitArm() {
  thread_local TransitArm arm;
  return arm;
}

/// ABFT gate on the compute stage: the gradient kernels maintain
/// 2*pairs + criticals == cells exactly (every cell is either half of
/// one gradient pair or critical), for both algorithms and any block
/// partition, so a counter flip or a kernel scribble breaks the
/// identity. Only checkable when a registry is attached -- the
/// counters live there; with integrity off it costs nothing.
void checkComputeIdentity(const PipelineConfig& cfg, int rank) {
  metrics::Registry* const reg = cfg.metrics;
  if (!cfg.integrity || !reg) return;
  using metrics::Counter;
  const std::int64_t cells = reg->counter(rank, Counter::kGradCells);
  const std::int64_t pairs = reg->counter(rank, Counter::kGradPairs);
  const std::int64_t crits = reg->counter(rank, Counter::kGradCriticals);
  if (2 * pairs + crits != cells)
    throw integrity::IntegrityError(
        "compute identity violated on rank " + std::to_string(rank) +
        ": 2*pairs + criticals != cells (pairs " + std::to_string(pairs) +
        ", criticals " + std::to_string(crits) + ", cells " +
        std::to_string(cells) + ")");
}

/// The Morse-Euler identity the check module pins (checkEuler): the
/// alternating critical-count sum of any complex over a solid-box
/// region is 1. Inlined here because pipeline cannot depend on check
/// (check depends on pipeline).
bool eulerOk(const MsComplex& c) {
  const auto counts = c.liveNodeCounts();
  return counts[0] - counts[1] + counts[2] - counts[3] == 1;
}

/// Stage-boundary telemetry: fold the tagging allocator's per-rank
/// byte counters into the registry's memory gauges and, when a tracer
/// is also attached, drop the headline work/memory values onto named
/// Chrome-trace counter tracks so Perfetto shows the curves under the
/// stage spans. One call per rank per stage boundary -- never in a
/// kernel loop.
void sampleMetrics(const PipelineConfig& cfg, int rank) {
  metrics::Registry* const reg = cfg.metrics;
  if (!reg) return;
  using metrics::Counter;
  using metrics::Gauge;
  const std::int64_t alloc = audit::AllocTracking::allocatedBytes(rank);
  const std::int64_t freed = audit::AllocTracking::freedBytes(rank);
  reg->set(rank, Gauge::kMemAllocBytes, alloc);
  reg->set(rank, Gauge::kMemAllocCount, audit::AllocTracking::allocationCount(rank));
  reg->set(rank, Gauge::kMemLiveBytes, alloc - freed);
  reg->setMax(rank, Gauge::kMemPeakLiveBytes, audit::AllocTracking::peakLiveBytes(rank));
  if (obs::Tracer* const tr = cfg.tracer) {
    tr->countNamed(rank, "mem_live_bytes", static_cast<double>(alloc - freed));
    tr->countNamed(rank, "mem_alloc_bytes", static_cast<double>(alloc));
    tr->countNamed(rank, "work_grad_cells",
                   static_cast<double>(reg->counter(rank, Counter::kGradCells)));
    tr->countNamed(rank, "work_trace_arcs",
                   static_cast<double>(reg->counter(rank, Counter::kTraceArcs)));
    tr->countNamed(rank, "work_simplify_cancelled",
                   static_cast<double>(reg->counter(rank, Counter::kSimplifyCancelled)));
  }
}

/// The original fault-free driver, byte-for-byte: taken whenever no
/// injector is attached and recovery is off.
void runPlain(const PipelineConfig& cfg, GuardedResult& out) {
  obs::Tracer* const tr = cfg.tracer;
  causal::Recorder* const rec = cfg.causal;
  metrics::Registry* const reg = cfg.metrics;
  // Checksummed framing: attaching the monitor is what turns it on in
  // the runtime (null = prior wire bytes, one branch per op).
  std::optional<integrity::Monitor> monitor;
  if (cfg.integrity) monitor.emplace(cfg.nranks);
  // Memory telemetry needs the tagging allocator's counters even when
  // no auditor is attached; the plain driver otherwise passes no
  // options at all, so the struct only appears on metrics or
  // integrity runs.
  par::Runtime::RunOptions mopts;
  mopts.track_allocations = reg != nullptr;
  mopts.integrity = monitor ? &*monitor : nullptr;

  prof::noteTotalRounds(cfg.profiler, cfg.plan.rounds());
  par::Runtime::run(cfg.nranks, [&](par::Comm& comm) {
    const int rank = comm.rank();
    // Bind this thread to the sampling profiler for the whole rank
    // body: obs spans and MSC_PROF_POINT markers below land on
    // rank's live span stack (one branch each when no profiler).
    const prof::ThreadBind prof_bind(cfg.profiler, rank);
    const std::vector<Block> blocks = decompose(cfg.domain, cfg.nblocks);

    // --- Read/sample stage.
    comm.barrier();
    const double t_read0 = now();
    if (rec) rec->setStage(rank, causal::Stage::kRead);
    std::map<int, BlockField> fields;
    {
      auto sp = obs::span(tr, rank, "read", "stage");
      for (const Block& blk : blocks) {
        if (blk.id % cfg.nranks != rank) continue;
        auto bsp = obs::span(tr, rank, "read_block", "stage");
        bsp.arg("block", blk.id);
        fields.emplace(blk.id, cfg.source.volume_path
                                   ? io::readBlock(*cfg.source.volume_path, blk,
                                                   cfg.source.sample_type)
                                   : synth::sample(blk, cfg.source.field));
      }
    }
    comm.barrier();
    const double t_read1 = now();
    sampleMetrics(cfg, rank);
    if (rec) rec->setStage(rank, causal::Stage::kCompute);

    // --- Compute + local simplification.
    std::map<int, MsComplex> owned;  // by root block id
    {
      auto sp = obs::span(tr, rank, "compute", "stage");
      for (auto& [id, bf] : fields) {
        auto bsp = obs::span(tr, rank, "compute_block", "stage");
        bsp.arg("block", id);
        owned.emplace(id, computeBlockComplex(cfg, bf, nullptr, nullptr, rank));
      }
    }
    fields.clear();
    checkComputeIdentity(cfg, rank);
    sampleMetrics(cfg, rank);
    comm.barrier();
    const double t_compute1 = now();

    // --- Merge rounds. Every rank derives the same schedule.
    std::vector<int> survivors(static_cast<std::size_t>(cfg.nblocks));
    for (int i = 0; i < cfg.nblocks; ++i) survivors[static_cast<std::size_t>(i)] = i;
    std::vector<double> round_ends;
    for (int r = 0; r < cfg.plan.rounds(); ++r) {
      const auto groups = cfg.plan.round(r, static_cast<int>(survivors.size()));
      // msc-analyze: tag-space(plain): r in [0,64)
      const int tag = kTagMergeBase + r;
      auto round_span = obs::span(tr, rank, "merge_round", "stage");
      round_span.arg("round", r);
      if (rec) rec->setStage(rank, causal::Stage::kMerge, r);
      prof::noteRound(cfg.profiler, rank, r);
      const bool sharded_here = cfg.sharded_final && r == cfg.plan.rounds() - 1 &&
                                groups.size() == 1 && survivors.size() > 1;
      if (sharded_here) {
        // --- Distributed final round (merge/shard.hpp): skeleton
        // allgather, replicated graph merge, owner-partitioned
        // geometry exchange. Survivors are NOT contracted: every
        // survivor keeps the part of the final complex its position
        // owns, and the write stage collects all of them.
        const int S = static_cast<int>(survivors.size());
        // msc-analyze: tag-space(plain): r in [0,64)
        const int geom_tag = kTagShardGeomBase + r;
        std::set<int> owner_ranks;
        for (const int blk : survivors) owner_ranks.insert(blk % cfg.nranks);
        // Skeleton allgather: one blob per owned position, shipped to
        // every other participating rank so each can replay the same
        // graph merge. Position 0 is the baseline root and is never
        // pre-merge reduced (the single-root schedule never ships it,
        // and the differential oracle compares against that baseline).
        std::map<int, io::Bytes> blobs;  // position -> blob
        int expected_blobs = 0;
        {
          // Named so the folded profile attributes the allgather's
          // send/recv-wait time, not just the blob construction.
          MSC_PROF_POINT("shard_blob_exchange");
          for (int p = 0; p < S; ++p) {
            const int blk = survivors[static_cast<std::size_t>(p)];
            if (blk % cfg.nranks != rank) {
              if (owner_ranks.count(rank)) ++expected_blobs;
              continue;
            }
            MsComplex& c = owned.at(blk);
            if (cfg.premerge && p > 0)
              merge::reduceForShip(c, cfg.persistence_threshold, reg, rank);
            io::Bytes blob = merge::makeShardBlob(
                c, p, merge::priorCoveredRegion(cfg.domain, cfg.nblocks, blk));
            metrics::add(reg, rank, metrics::Counter::kPackBytes,
                         static_cast<std::int64_t>(blob.size()));
            for (const int q : owner_ranks)
              if (q != rank) comm.send(q, tag, frame(p, blk, blob));
            blobs.emplace(p, std::move(blob));
          }
          for (int i = 0; i < expected_blobs; ++i) {
            Framed f = unframe(comm.recv(par::kAny, tag));
            blobs.emplace(f.dest_block, std::move(f.packed));
          }
        }
        if (owner_ranks.count(rank)) {
          // Replicated graph merge: identical blobs glued in identical
          // order on every participating rank -> identical graphs and
          // identical shard plans everywhere.
          std::vector<merge::ShardSkeleton> skels;
          skels.reserve(static_cast<std::size_t>(S));
          for (int p = 0; p < S; ++p)
            skels.push_back(merge::parseShardBlob(blobs.at(p)));
          if (rec) rec->setStage(rank, causal::Stage::kGlue, r);
          auto gsp = obs::span(tr, rank, "shard_merge", "stage");
          gsp.arg("round", r).arg("positions", static_cast<std::int64_t>(S));
          const double g0 = tr ? tr->now() : 0;
          const MsComplex merged = merge::mergeShardSkeletons(
              std::move(skels), cfg.persistence_threshold, reg, rank);
          const merge::ShardPlanView splan = merge::buildShardPlan(merged);
          if (tr) tr->count(rank, obs::Counter::kGlueSeconds, tr->now() - g0);
          // Geometry bundles: each owned position serves the V-paths
          // that other ranks' parts reference from it.
          int expected_bundles = 0;
          std::map<int, merge::ShardPathServer> servers;  // dst position
          {
            // Covers bundle pack + send + recv-wait + unpack; the
            // pack/unpack kernels keep their own nested markers.
            MSC_PROF_POINT("shard_bundle_exchange");
            for (int d = 0; d < S; ++d) {
              const int dst_owner = survivors[static_cast<std::size_t>(d)] % cfg.nranks;
              for (int s = 0; s < S; ++s) {
                if (s == d) continue;
                const int src_blk = survivors[static_cast<std::size_t>(s)];
                const bool mine_s = src_blk % cfg.nranks == rank;
                if (mine_s && dst_owner != rank) {
                  io::Bytes bundle = merge::packPathBundle(
                      owned.at(src_blk), merge::shardNeededPaths(splan, S, d, s));
                  metrics::add(reg, rank, metrics::Counter::kPackBytes,
                               static_cast<std::int64_t>(bundle.size()));
                  comm.send(dst_owner, geom_tag, frame(d, s, bundle));
                }
                if (dst_owner == rank && !mine_s) ++expected_bundles;
              }
            }
            for (int d = 0; d < S; ++d) {
              if (survivors[static_cast<std::size_t>(d)] % cfg.nranks != rank) continue;
              merge::ShardPathServer& server = servers[d];
              for (int s = 0; s < S; ++s) {
                const int src_blk = survivors[static_cast<std::size_t>(s)];
                if (src_blk % cfg.nranks == rank) server.addLocal(s, &owned.at(src_blk));
              }
            }
            for (int i = 0; i < expected_bundles; ++i) {
              Framed f = unframe(comm.recv(par::kAny, geom_tag));
              servers.at(f.dest_block)
                  .addRemote(f.sender_block, merge::unpackPathBundle(f.packed));
            }
          }
          // Materialize every owned part before installing any: the
          // servers hold pointers into the pre-round complexes.
          std::map<int, MsComplex> parts_out;  // block id -> part
          for (auto& [d, server] : servers) {
            const int blk = survivors[static_cast<std::size_t>(d)];
            parts_out.emplace(blk,
                              merge::materializeShardPart(merged, splan, S, d, server));
          }
          for (auto& [blk, part] : parts_out) owned.at(blk) = std::move(part);
        }
        sampleMetrics(cfg, rank);
        round_span.end();
        if (rec) rec->roundCommit(rank, r);
        comm.barrier();
        round_ends.push_back(now());
        continue;
      }
      // Send phase: non-root members ship their complex to the root's
      // owner and drop out.
      int expected = 0;
      {
        // Named so the profile attributes pack + send time (the
        // premerge reduction keeps its own nested marker).
        MSC_PROF_POINT("merge_ship");
        for (const MergeGroup& g : groups) {
          const int root_block = survivors[static_cast<std::size_t>(g.root)];
          const int root_owner = root_block % cfg.nranks;
          for (std::size_t m = 1; m < g.members.size(); ++m) {
            const int blk = survivors[static_cast<std::size_t>(g.members[m])];
            const int owner = blk % cfg.nranks;
            if (owner == rank) {
              const auto it = owned.find(blk);
              if (cfg.premerge)
                merge::reduceForShip(it->second, cfg.persistence_threshold, reg, rank);
              const io::Bytes packed = io::pack(it->second);
              metrics::add(reg, rank, metrics::Counter::kPackBytes,
                           static_cast<std::int64_t>(packed.size()));
              comm.send(root_owner, tag, frame(root_block, blk, packed));
              owned.erase(it);
            }
            if (root_owner == rank) ++expected;
          }
        }
      }
      // Receive phase: roots collect, order members by block id, and
      // glue + re-simplify once per group.
      std::map<int, std::map<int, MsComplex>> incoming;  // root -> (sender -> complex)
      {
        // Covers the mailbox wait and the member unpacks.
        MSC_PROF_POINT("merge_recv");
        for (int i = 0; i < expected; ++i) {
          Framed f = unframe(comm.recv(par::kAny, tag));
          incoming[f.dest_block].emplace(f.sender_block, io::unpack(f.packed));
        }
      }
      if (rec && !incoming.empty()) rec->setStage(rank, causal::Stage::kGlue, r);
      for (auto& [root_block, by_sender] : incoming) {
        std::vector<MsComplex> members;
        members.reserve(by_sender.size());
        for (auto& [sender, c] : by_sender) members.push_back(std::move(c));
        MsComplex& root = owned.at(root_block);
        auto gsp = obs::span(tr, rank, "glue", "stage");
        gsp.arg("root_block", root_block).arg("members", static_cast<std::int64_t>(members.size()));
        const double g0 = tr ? tr->now() : 0;
        mergeComplexes(root, std::move(members), cfg.persistence_threshold, nullptr,
                       nullptr, reg, rank);
        root.compact();
        if (tr) tr->count(rank, obs::Counter::kGlueSeconds, tr->now() - g0);
      }
      std::vector<int> next;
      for (const MergeGroup& g : groups)
        next.push_back(survivors[static_cast<std::size_t>(g.root)]);
      survivors = std::move(next);
      sampleMetrics(cfg, rank);
      round_span.end();
      if (rec) rec->roundCommit(rank, r);
      comm.barrier();
      round_ends.push_back(now());
    }

    // --- Write. The output file is written collectively: offsets
    // are agreed once, then every rank writes its own blocks in
    // place (ranks with nothing to contribute still participate --
    // "null write"). Rank 0 additionally gathers the payloads to
    // populate the in-memory result.
    auto write_span = obs::span(tr, rank, "write", "stage");
    if (rec) rec->setStage(rank, causal::Stage::kWrite);
    prof::noteRound(cfg.profiler, rank, -1);
    std::map<int, int> slotOf;
    for (std::size_t i = 0; i < survivors.size(); ++i)
      slotOf.emplace(survivors[i], static_cast<int>(i));
    std::vector<io::WriteContribution> contrib;
    for (auto& [id, c] : owned) {
      io::Bytes packed = io::pack(c);
      metrics::add(reg, rank, metrics::Counter::kPackBytes,
                   static_cast<std::int64_t>(packed.size()));
      comm.send(0, kTagWrite, frame(id, id, packed));
      if (!cfg.output_path.empty()) contrib.push_back({slotOf.at(id), std::move(packed)});
    }
    if (!cfg.output_path.empty())
      io::parallelWriteComplexFile(comm, cfg.output_path,
                                   static_cast<int>(survivors.size()), contrib);
    if (rank == 0) {
      std::map<int, io::Bytes> by_block;
      for (std::size_t i = 0; i < survivors.size(); ++i) {
        Framed f = unframe(comm.recv(par::kAny, kTagWrite));
        by_block.emplace(f.dest_block, std::move(f.packed));
      }
      ThreadedResult local;
      for (const int id : survivors) {
        io::Bytes& b = by_block.at(id);
        local.output_bytes += static_cast<std::int64_t>(b.size());
        const MsComplex c = io::unpack(b);
        const auto counts = c.liveNodeCounts();
        for (int i = 0; i < 4; ++i)
          local.node_counts[static_cast<std::size_t>(i)] += counts[i];
        local.arc_count += c.liveArcCount();
        local.outputs.push_back(std::move(b));
      }
      local.times.read = t_read1 - t_read0;
      local.times.compute = t_compute1 - t_read1;
      double prev = t_compute1;
      for (const double e : round_ends) {
        local.times.merge_rounds.push_back(e - prev);
        prev = e;
      }
      local.times.write = now() - prev;
      const std::lock_guard lock(out.mu);
      out.value = std::move(local);
    }
    sampleMetrics(cfg, rank);
    write_span.end();
    if (rec) rec->setStage(rank, causal::Stage::kIdle);
    comm.barrier();
  }, cfg.tracer, cfg.auditor, cfg.causal, (reg || monitor) ? &mopts : nullptr);

  if (monitor) {
    if (reg) {
      for (int rr = 0; rr < cfg.nranks; ++rr) {
        reg->add(rr, metrics::Counter::kIntegrityVerified, monitor->verified(rr));
        reg->add(rr, metrics::Counter::kIntegrityFailed, monitor->failed(rr));
      }
      reg->add(0, metrics::Counter::kIntegrityHealed, monitor->healedTotal());
    }
    const std::lock_guard lock(out.mu);
    out.value.integrity.frames_verified = monitor->verifiedTotal();
    out.value.integrity.frames_dropped = monitor->failedTotal();
    out.value.integrity.heals = monitor->healedTotal();
  }
}

/// The recovery driver: every merge round becomes a transaction
/// (attempt -> vote -> drain -> commit/rollback) over per-round
/// checkpoints, under deterministic fault injection. See
/// fault/recovery.hpp for the protocol and its invariants.
void runRecovering(const PipelineConfig& cfg, GuardedResult& out) {
  obs::Tracer* const tr = cfg.tracer;
  causal::Recorder* const rec = cfg.causal;
  // Recovery failures carry the causal view when a recorder is on:
  // per-rank vector clocks + last-K event histories, so cross-rank
  // evidence in the report is ordered.
  const auto withCausal = [rec](std::string what) {
    if (rec) what += "\n=== causal context ===\n" + causal::fullContextReport(*rec);
    return what;
  };
  fault::Injector* const inj = cfg.fault.injector;
  const fault::RecoveryMode mode = cfg.fault.recovery;
  // Integrity: the monitor turns on checksummed wire framing, the
  // store setup turns on checksummed (and corruptible, when the
  // injector has corruption rates) checkpoint entries, and the
  // transit hook delivers armed in-flight flips (see TransitArm).
  std::optional<integrity::Monitor> monitor;
  if (cfg.integrity) monitor.emplace(cfg.nranks);
  integrity::Monitor* const mon = monitor ? &*monitor : nullptr;
  fault::CheckpointStore store(cfg.fault.checkpoint_dir);
  if (cfg.integrity) {
    fault::CheckpointStore::IntegritySetup is;
    is.checksums = true;
    is.injector = inj;
    is.monitor = mon;
    is.tracer = tr;
    store.configureIntegrity(is);
  }
  fault::Coordinator coord(cfg.nranks, mode, &store);
  const par::Comm::RecvDeadline deadline{cfg.fault.recv_deadline_seconds,
                                         cfg.fault.backoff_initial_ms,
                                         cfg.fault.backoff_max_ms};
  metrics::Registry* const reg = cfg.metrics;
  par::Runtime::RunOptions ropts;
  ropts.max_respawns_per_rank =
      mode == fault::RecoveryMode::kOff ? 0 : cfg.fault.max_respawns_per_rank;
  ropts.track_allocations = reg != nullptr;
  ropts.integrity = mon;
  const bool corrupt_transit = inj && inj->options().corrupt_payload_rate > 0;
  if (corrupt_transit)
    ropts.transit_fault = [](par::Bytes& b) {
      TransitArm& arm = transitArm();
      if (!arm.armed || b.empty()) return;
      arm.armed = false;
      integrity::flipOneBit(b.data(), b.size(), arm.salt);
    };
  // Fault/recovery lifecycle as trace instants: respawns (here) and
  // attempt begin/commit/rollback, votes and reassignments (below)
  // make msc_chaos runs visually debuggable in the trace viewer.
  if (tr)
    ropts.on_respawn = [tr](int rank, int attempt) {
      tr->instant(rank, "respawn(attempt=" + std::to_string(attempt) + ")", "fault");
    };

  prof::noteTotalRounds(cfg.profiler, cfg.plan.rounds());
  par::Runtime::run(cfg.nranks, [&](par::Comm& comm) {
    const int rank = comm.rank();
    // Profiler binding covers respawned incarnations too: each
    // incarnation re-enters this lambda on a fresh thread.
    const prof::ThreadBind prof_bind(cfg.profiler, rank);
    const int nranks = cfg.nranks;
    const int incarnation = coord.noteEntry(rank);

    std::map<int, MsComplex> owned;  // by block id
    std::vector<bool> mask(static_cast<std::size_t>(nranks), false);  // agreed dead set
    bool zombie = false;        // kDegrade: serves votes/drains/write only
    bool fresh_corpse = false;  // newly dead: first vote must veto the attempt
    int start_round = 0;
    int attempt = 0;
    double t_read0 = now(), t_read1 = t_read0, t_compute1 = t_read0;
    std::vector<double> round_ends;

    // Restore one block's round-entry complex from the checkpoint
    // store. An unrecoverable round-0 entry (both the in-memory copy
    // and the spill corrupt, or no spill at all) is healed by
    // deterministic recompute -- the baseline is a pure function of
    // the input; later rounds have no such function, so their loss is
    // a structured error, never silence.
    const auto restoreBlock = [&](int round, int b, int att) -> MsComplex {
      if (const auto bytes = store.get(round, b, rank)) return io::unpack(*bytes);
      if (round == 0 && cfg.integrity) {
        if (tr)
          tr->instant(rank, "recompute_block(block=" + std::to_string(b) + ")",
                      "fault");
        for (const Block& blk : decompose(cfg.domain, cfg.nblocks)) {
          if (blk.id != b) continue;
          MsComplex c = computeBlockComplex(cfg, blk, nullptr, nullptr, rank);
          store.put(0, b, io::pack(c), rank);
          if (mon) mon->noteHealed(rank);
          return c;
        }
      }
      throw fault::RecoveryError(
          rank, round, att,
          withCausal("missing checkpoint for block " + std::to_string(b)));
    };

    if (incarnation == 0) {
      // --- Read/sample + compute, exactly as the fault-free driver.
      // Faults are scoped to the merge rounds, so every rank runs
      // this prologue exactly once.
      comm.barrier();
      t_read0 = now();
      if (rec) rec->setStage(rank, causal::Stage::kRead);
      std::map<int, BlockField> fields;
      {
        auto sp = obs::span(tr, rank, "read", "stage");
        for (const Block& blk : decompose(cfg.domain, cfg.nblocks)) {
          if (blk.id % nranks != rank) continue;
          auto bsp = obs::span(tr, rank, "read_block", "stage");
          bsp.arg("block", blk.id);
          fields.emplace(blk.id, cfg.source.volume_path
                                     ? io::readBlock(*cfg.source.volume_path, blk,
                                                     cfg.source.sample_type)
                                     : synth::sample(blk, cfg.source.field));
        }
      }
      comm.barrier();
      t_read1 = now();
      if (rec) rec->setStage(rank, causal::Stage::kCompute);
      {
        auto sp = obs::span(tr, rank, "compute", "stage");
        for (auto& [id, bf] : fields) {
          auto bsp = obs::span(tr, rank, "compute_block", "stage");
          bsp.arg("block", id);
          owned.emplace(id, computeBlockComplex(cfg, bf, nullptr, nullptr, rank));
        }
      }
      fields.clear();
      checkComputeIdentity(cfg, rank);
      sampleMetrics(cfg, rank);
      comm.barrier();
      t_compute1 = now();
      // Round-0 checkpoint: the recovery baseline.
      for (const auto& [id, c] : owned) {
        const io::Bytes cp = io::pack(c);
        metrics::add(reg, rank, metrics::Counter::kCheckpointBytes,
                     static_cast<std::int64_t>(cp.size()));
        metrics::add(reg, rank, metrics::Counter::kCheckpointPuts, 1);
        store.put(0, id, cp, rank);
      }
    } else {
      // --- Respawned replacement: rejoin the in-flight attempt. The
      // position is exact because no peer can pass an attempt's vote
      // without this rank's contribution.
      const fault::Coordinator::Position pos = coord.position();
      start_round = pos.round;
      attempt = pos.attempt;
      mask = coord.deadMask();
      if (mode == fault::RecoveryMode::kDegrade) {
        zombie = true;
        fresh_corpse = !coord.isDead(rank);
        coord.markDead(rank);
        mask[static_cast<std::size_t>(rank)] = true;
      } else {
        // kRespawn: restore every home-owned block at the current
        // round's entry, then re-execute the attempt from scratch
        // (peers' duplicate suppression absorbs anything the previous
        // incarnation already sent).
        for (const int b : cfg.plan.survivorIds(cfg.nblocks, start_round)) {
          if (b % nranks != rank) continue;
          owned.emplace(b, restoreBlock(start_round, b, attempt));
        }
      }
    }

    // Send-site fault point: kDuplicate asks the caller to
    // double-send; kCorruptPayload arms the transit hook so the very
    // next framed send leaves this rank with one bit flipped (salted
    // by the injector's op count: deterministic, distinct per send).
    const auto sendFault = [&]() -> bool {
      const fault::FaultKind k =
          fault::applyFault(inj, rank, fault::OpClass::kSend, tr);
      if (k == fault::FaultKind::kCorruptPayload) {
        TransitArm& arm = transitArm();
        arm.armed = true;
        arm.salt = integrity::mix64(
            static_cast<std::uint64_t>(inj->options().seed) ^
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 32) ^
            static_cast<std::uint64_t>(inj->opCount(rank)));
      }
      return k == fault::FaultKind::kDuplicate;
    };

    // Agree on an attempt's outcome and the dead set, then sweep the
    // attempt's stragglers. Every deposit for (round, attempt)
    // happens-before the decision broadcast (a sender deposits before
    // it votes), so the post-vote drain races with nothing.
    const auto voteAndDrain = [&](int round, int att, bool my_ok) -> bool {
      par::Bytes ballot(2);
      ballot[0] = static_cast<std::byte>(my_ok ? 1 : 0);
      ballot[1] = static_cast<std::byte>(zombie ? 1 : 0);
      std::vector<par::Bytes> ballots = comm.gather(0, std::move(ballot));
      par::Bytes decision;
      if (rank == 0) {
        decision.resize(1 + static_cast<std::size_t>(nranks));
        bool all_ok = true;
        for (int i = 0; i < nranks; ++i) {
          const par::Bytes& b = ballots[static_cast<std::size_t>(i)];
          all_ok = all_ok && std::to_integer<int>(b[0]) != 0;
          decision[1 + static_cast<std::size_t>(i)] = b[1];
        }
        decision[0] = static_cast<std::byte>(all_ok ? 1 : 0);
      }
      decision = comm.broadcast(0, std::move(decision));
      for (int i = 0; i < nranks; ++i)
        if (std::to_integer<int>(decision[1 + static_cast<std::size_t>(i)]) != 0 &&
            !mask[static_cast<std::size_t>(i)]) {
          mask[static_cast<std::size_t>(i)] = true;
          coord.markDead(i);
        }
      // Sweep ALL of the attempt's tag spaces: skeletons/complexes,
      // the sharded rounds' geometry bundles, and integrity
      // re-requests (probing an unused tag is free).
      int drained = 0;
      for (const int tag :
           {mergeTag(round, att), shardGeomTag(round, att), nackTag(round, att)}) {
        while (comm.probe(par::kAny, tag)) {
          comm.recv(par::kAny, tag);
          ++drained;
        }
      }
      if (drained > 0) coord.noteDrained(drained);
      return std::to_integer<int>(decision[0]) != 0;
    };

    // --- Merge rounds as transactions.
    std::vector<int> survivors = cfg.plan.survivorIds(cfg.nblocks, start_round);
    for (int r = start_round; r < cfg.plan.rounds(); ++r) {
      const bool sharded_here =
          cfg.sharded_final && r == cfg.plan.rounds() - 1 && survivors.size() > 1 &&
          cfg.plan.round(r, static_cast<int>(survivors.size())).size() == 1;
      for (;;) {
        if (attempt >= cfg.fault.max_round_attempts)
          // Shared decisions advance `attempt` in lockstep, so every
          // rank exhausts the budget at once: structured, not a hang.
          throw fault::RecoveryError(
              rank, r, attempt,
              withCausal("merge-round attempt budget exhausted (" +
                         std::to_string(cfg.fault.max_round_attempts) + " attempts)"));
        coord.advanceTo(r, attempt);
        const int tag = mergeTag(r, attempt);
        if (rec) rec->setStage(rank, causal::Stage::kMerge, r);
        prof::noteRound(cfg.profiler, rank, r);
        if (tr)
          tr->instant(rank,
                      "attempt_begin(round=" + std::to_string(r) +
                          ",attempt=" + std::to_string(attempt) + ")",
                      "fault");
        bool ok = true;
        std::vector<int> sent;
        std::map<int, std::map<int, io::Bytes>> incoming;  // root -> (sender -> bytes)
        std::map<int, MsComplex> shard_parts;              // block id -> part (sharded)
        if (!zombie && sharded_here) {
          // --- Distributed final round under the transaction
          // protocol. Two attempt-tagged message phases (skeletons,
          // then geometry bundles); a timeout in either vetoes the
          // attempt, and voteAndDrain sweeps both tag spaces. Nothing
          // in `owned` is replaced until commit — rollback restores
          // the round-entry checkpoints exactly as for plain rounds.
          auto att_span = obs::span(tr, rank, "merge_attempt", "stage");
          att_span.arg("round", r).arg("attempt", attempt);
          const int S = static_cast<int>(survivors.size());
          const int btag = shardGeomTag(r, attempt);
          std::set<int> owner_ranks;
          for (const int blk : survivors)
            owner_ranks.insert(fault::ownerOf(blk, nranks, mask));
          std::map<int, io::Bytes> blobs;         // position -> blob
          std::set<std::pair<int, int>> missing;  // (position, block) awaited
          {
            MSC_PROF_POINT("shard_blob_exchange");
            for (int p = 0; p < S; ++p) {
              const int blk = survivors[static_cast<std::size_t>(p)];
              if (fault::ownerOf(blk, nranks, mask) != rank) {
                if (owner_ranks.count(rank)) missing.insert({p, blk});
                continue;
              }
              MsComplex& c = owned.at(blk);
              // Replay-safe: rollback restores `owned` from checkpoints,
              // so a re-run reduces the same round-entry state again.
              if (cfg.premerge && p > 0)
                merge::reduceForShip(c, cfg.persistence_threshold, reg, rank);
              io::Bytes blob = merge::makeShardBlob(
                  c, p, merge::priorCoveredRegion(cfg.domain, cfg.nblocks, blk));
              metrics::add(reg, rank, metrics::Counter::kPackBytes,
                           static_cast<std::int64_t>(blob.size()));
              for (const int q : owner_ranks) {
                if (q == rank) continue;
                const bool dup = sendFault();
                par::Bytes f = frame(p, blk, blob);
                if (dup) comm.send(q, tag, f);
                comm.send(q, tag, std::move(f));
              }
              blobs.emplace(p, std::move(blob));
            }
            while (!missing.empty()) {
              fault::applyFault(inj, rank, fault::OpClass::kRecv, tr);
              auto msg = comm.tryRecv(par::kAny, tag, deadline);
              if (!msg) {
                ok = false;
                break;
              }
              Framed f = unframe(*msg);
              if (missing.erase({f.dest_block, f.sender_block}) > 0)
                blobs.emplace(f.dest_block, std::move(f.packed));
            }
          }
          if (ok && owner_ranks.count(rank)) {
            std::vector<merge::ShardSkeleton> skels;
            skels.reserve(static_cast<std::size_t>(S));
            for (int p = 0; p < S; ++p)
              skels.push_back(merge::parseShardBlob(blobs.at(p)));
            if (rec) rec->setStage(rank, causal::Stage::kGlue, r);
            const MsComplex merged = merge::mergeShardSkeletons(
                std::move(skels), cfg.persistence_threshold, reg, rank);
            const merge::ShardPlanView splan = merge::buildShardPlan(merged);
            std::set<std::pair<int, int>> missing_b;  // (dst pos, src pos)
            std::map<int, merge::ShardPathServer> servers;  // dst position
            {
              MSC_PROF_POINT("shard_bundle_exchange");
              for (int d = 0; d < S; ++d) {
                const int dst_owner = fault::ownerOf(
                    survivors[static_cast<std::size_t>(d)], nranks, mask);
                for (int s = 0; s < S; ++s) {
                  if (s == d) continue;
                  const int src_blk = survivors[static_cast<std::size_t>(s)];
                  const bool mine_s = fault::ownerOf(src_blk, nranks, mask) == rank;
                  if (mine_s && dst_owner != rank) {
                    const bool dup = sendFault();
                    io::Bytes bundle = merge::packPathBundle(
                        owned.at(src_blk), merge::shardNeededPaths(splan, S, d, s));
                    metrics::add(reg, rank, metrics::Counter::kPackBytes,
                                 static_cast<std::int64_t>(bundle.size()));
                    par::Bytes f = frame(d, s, bundle);
                    if (dup) comm.send(dst_owner, btag, f);
                    comm.send(dst_owner, btag, std::move(f));
                  }
                  if (dst_owner == rank && !mine_s) missing_b.insert({d, s});
                }
              }
              for (int d = 0; d < S; ++d) {
                if (fault::ownerOf(survivors[static_cast<std::size_t>(d)], nranks,
                                   mask) != rank)
                  continue;
                merge::ShardPathServer& server = servers[d];
                for (int s = 0; s < S; ++s) {
                  const int src_blk = survivors[static_cast<std::size_t>(s)];
                  if (fault::ownerOf(src_blk, nranks, mask) == rank)
                    server.addLocal(s, &owned.at(src_blk));
                }
              }
              while (!missing_b.empty()) {
                fault::applyFault(inj, rank, fault::OpClass::kRecv, tr);
                auto msg = comm.tryRecv(par::kAny, btag, deadline);
                if (!msg) {
                  ok = false;
                  break;
                }
                Framed f = unframe(*msg);
                if (missing_b.erase({f.dest_block, f.sender_block}) > 0)
                  servers.at(f.dest_block)
                      .addRemote(f.sender_block, merge::unpackPathBundle(f.packed));
              }
            }
            if (ok)
              for (auto& [d, server] : servers)
                shard_parts.emplace(
                    survivors[static_cast<std::size_t>(d)],
                    merge::materializeShardPart(merged, splan, S, d, server));
          }
        } else if (!zombie) {
          auto att_span = obs::span(tr, rank, "merge_attempt", "stage");
          att_span.arg("round", r).arg("attempt", attempt);
          const auto groups = cfg.plan.round(r, static_cast<int>(survivors.size()));
          // Send phase (fault point per send): members ship to the
          // root's owner under the agreed dead mask. Nothing is
          // erased yet — rollback needs the blocks in place.
          std::set<std::pair<int, int>> missing;  // (root, sender) still awaited
          {
            MSC_PROF_POINT("merge_ship");
            for (const MergeGroup& g : groups) {
              const int root_block = survivors[static_cast<std::size_t>(g.root)];
              const int root_owner = fault::ownerOf(root_block, nranks, mask);
              for (std::size_t m = 1; m < g.members.size(); ++m) {
                const int blk = survivors[static_cast<std::size_t>(g.members[m])];
                if (fault::ownerOf(blk, nranks, mask) == rank) {
                  MsComplex& mc = owned.at(blk);
                  // Replay-safe for the same reason as the sharded
                  // branch: rollback restores the round-entry state.
                  if (cfg.premerge)
                    merge::reduceForShip(mc, cfg.persistence_threshold, reg, rank);
                  const bool dup = sendFault();
                  const io::Bytes packed = io::pack(mc);
                  metrics::add(reg, rank, metrics::Counter::kPackBytes,
                               static_cast<std::int64_t>(packed.size()));
                  par::Bytes f = frame(root_block, blk, packed);
                  if (dup) comm.send(root_owner, tag, f);
                  comm.send(root_owner, tag, std::move(f));
                  sent.push_back(blk);
                }
                if (root_owner == rank) missing.insert({root_block, blk});
              }
            }
          }
          // Serve integrity re-requests for frames this rank sent in
          // this attempt: re-pack from `owned` (blocks are not erased
          // until commit), so the resend is byte-identical to the
          // original. Deliberately not a fault point -- the retry
          // budget, not the injector, bounds the heal loop.
          const auto serveNacks = [&]() {
            while (comm.probe(par::kAny, nackTag(r, attempt))) {
              const Framed q = unframe(comm.recv(par::kAny, nackTag(r, attempt)));
              const auto it = owned.find(q.sender_block);
              if (it == owned.end()) continue;  // stale or misrouted
              comm.send(fault::ownerOf(q.dest_block, nranks, mask), tag,
                        frame(q.dest_block, q.sender_block, io::pack(it->second)));
            }
          };
          // Receive phase (fault point per receive): deadline-bounded
          // and keyed on (root, sender) so duplicates and replayed
          // sends collapse to one delivery. With integrity on and
          // transit corruption possible, the wait is sliced: a slice
          // that expires after the monitor counted a dropped frame at
          // this rank re-requests everything still missing (bounded
          // by corruption_retry_budget, each re-request buying one
          // more slice of patience). An unanswered re-request falls
          // back to deadline expiry -> vote fail -> attempt replay,
          // so in-attempt healing is an optimization, never a
          // correctness dependency.
          const bool nack_on = mon && corrupt_transit;
          const double slice_s =
              nack_on ? std::min(0.025, deadline.seconds / 4) : deadline.seconds;
          const par::Comm::RecvDeadline slice{slice_s, deadline.backoff_initial_ms,
                                              deadline.backoff_max_ms};
          const std::int64_t failed0 = mon ? mon->failed(rank) : 0;
          std::set<std::pair<int, int>> nacked;  // re-requested, not yet healed
          int nacks_used = 0;
          double wait_left = deadline.seconds;
          {
            MSC_PROF_POINT("merge_recv");
            while (!missing.empty()) {
              if (nack_on) serveNacks();
              fault::applyFault(inj, rank, fault::OpClass::kRecv, tr);
              auto msg = comm.tryRecv(par::kAny, tag, slice);
              if (!msg) {
                wait_left -= slice_s;
                if (nack_on && mon->failed(rank) - failed0 > nacks_used &&
                    nacks_used < cfg.fault.corruption_retry_budget) {
                  for (const auto& [root_blk, snd_blk] : missing) {
                    comm.send(fault::ownerOf(snd_blk, nranks, mask),
                              nackTag(r, attempt),
                              frame(root_blk, snd_blk, io::Bytes{}));
                    nacked.insert({root_blk, snd_blk});
                  }
                  ++nacks_used;
                  wait_left += slice_s;
                  if (tr)
                    tr->instant(rank,
                                "integrity_nack(round=" + std::to_string(r) +
                                    ",attempt=" + std::to_string(attempt) + ")",
                                "fault");
                }
                if (wait_left <= 0) {
                  ok = false;
                  break;
                }
                continue;
              }
              Framed f = unframe(*msg);
              if (missing.erase({f.dest_block, f.sender_block}) > 0) {
                if (mon && nacked.erase({f.dest_block, f.sender_block}) > 0)
                  mon->noteHealed(rank);
                incoming[f.dest_block].emplace(f.sender_block, std::move(f.packed));
              }
            }
          }
          // ABFT pre-vote gate: a member that passed its checksum can
          // still be wrong if it was corrupted *before* it was packed
          // (a scribble the checksum then faithfully covers). The
          // Morse-Euler identity is cheap and catches exactly that
          // class; a violation vetoes the attempt so the replay
          // re-ships from checkpoints.
          if (ok && cfg.integrity) {
            for (const auto& by_root : incoming) {
              for (const auto& [snd, bytes] : by_root.second) {
                if (eulerOk(io::unpack(bytes))) continue;
                ok = false;
                if (mon) mon->noteFailed(rank);
                if (tr)
                  tr->instant(rank,
                              "integrity_euler_veto(block=" + std::to_string(snd) +
                                  ")",
                              "fault");
              }
            }
          }
          // Linger grace: a root whose frame from this rank rotted in
          // transit discovers it about one slice after we sent; stay
          // responsive to its re-request briefly before entering the
          // vote (where the gather would block us past helping). The
          // fallback when the window is missed is the attempt replay.
          if (nack_on && ok) {
            for (int g = 0; g < 3; ++g) {
              std::this_thread::sleep_for(std::chrono::duration<double>(slice_s));
              serveNacks();
            }
          }
        }
        const bool advance = voteAndDrain(r, attempt, zombie ? !fresh_corpse : ok);
        if (tr)
          tr->instant(rank,
                      std::string(advance ? "vote_commit" : "vote_rollback") + "(round=" +
                          std::to_string(r) + ",attempt=" + std::to_string(attempt) + ")",
                      "fault");
        fresh_corpse = false;
        if (std::all_of(mask.begin(), mask.end(), [](bool d) { return d; }))
          throw fault::RecoveryError(rank, r, attempt, withCausal("no live ranks remain"));
        if (advance) {
          if (!zombie) {
            if (sharded_here) {
              // Install the materialized parts: every block this rank
              // owns is a survivor position, so each gets its part.
              for (auto& [blk, part] : shard_parts) owned.at(blk) = std::move(part);
            }
            for (const int b : sent) owned.erase(b);
            if (rec && !incoming.empty()) rec->setStage(rank, causal::Stage::kGlue, r);
            for (auto& [root_block, by_sender] : incoming) {
              std::vector<MsComplex> members;
              members.reserve(by_sender.size());
              for (auto& [sender, bytes] : by_sender) members.push_back(io::unpack(bytes));
              MsComplex& root = owned.at(root_block);
              auto gsp = obs::span(tr, rank, "glue", "stage");
              gsp.arg("root_block", root_block)
                  .arg("members", static_cast<std::int64_t>(members.size()));
              const double g0 = tr ? tr->now() : 0;
              mergeComplexes(root, std::move(members), cfg.persistence_threshold,
                             nullptr, nullptr, reg, rank);
              root.compact();
              if (tr) tr->count(rank, obs::Counter::kGlueSeconds, tr->now() - g0);
            }
            // Checkpoint the committed round's exit state — the entry
            // state of round r + 1.
            for (const auto& [id, c] : owned) {
              const io::Bytes cp = io::pack(c);
              metrics::add(reg, rank, metrics::Counter::kCheckpointBytes,
                           static_cast<std::int64_t>(cp.size()));
              metrics::add(reg, rank, metrics::Counter::kCheckpointPuts, 1);
              store.put(r + 1, id, cp, rank);
            }
          }
          if (rec) rec->roundCommit(rank, r);
          if (tr) tr->instant(rank, "round_commit(round=" + std::to_string(r) + ")", "fault");
          sampleMetrics(cfg, rank);
          round_ends.push_back(now());
          attempt = 0;
          break;
        }
        // Rollback: uniformly restore this rank's round-entry state
        // from the checkpoints (reassignment under a grown dead mask
        // may have changed what this rank owns).
        coord.noteReplay();
        if (tr) {
          tr->count(rank, obs::Counter::kRoundReplays, 1);
          tr->instant(rank,
                      "round_rollback(round=" + std::to_string(r) +
                          ",attempt=" + std::to_string(attempt) + ")",
                      "fault");
        }
        if (!zombie) {
          owned.clear();
          for (const int b : survivors) {
            if (fault::ownerOf(b, nranks, mask) != rank) continue;
            if (b % nranks != rank) {
              coord.noteReassigned(1);
              if (tr)
                tr->instant(rank, "degrade_reassign(block=" + std::to_string(b) + ")",
                            "fault");
            }
            owned.emplace(b, restoreBlock(r, b, attempt));
          }
        }
        ++attempt;
      }
      // The sharded round keeps every survivor alive (each holds a
      // part of the final complex); only plain rounds contract.
      if (!sharded_here) survivors = cfg.plan.survivorIds(cfg.nblocks, r + 1);
    }
    coord.setFinished();

    // --- Write, as in the fault-free driver; zombies participate in
    // the collective write with zero contributions ("null write").
    auto write_span = obs::span(tr, rank, "write", "stage");
    if (rec) rec->setStage(rank, causal::Stage::kWrite);
    prof::noteRound(cfg.profiler, rank, -1);
    std::map<int, int> slotOf;
    for (std::size_t i = 0; i < survivors.size(); ++i)
      slotOf.emplace(survivors[i], static_cast<int>(i));
    std::vector<io::WriteContribution> contrib;
    for (auto& [id, c] : owned) {
      io::Bytes packed = io::pack(c);
      metrics::add(reg, rank, metrics::Counter::kPackBytes,
                   static_cast<std::int64_t>(packed.size()));
      comm.send(0, kTagWrite, frame(id, id, packed));
      if (!cfg.output_path.empty()) contrib.push_back({slotOf.at(id), std::move(packed)});
    }
    if (!cfg.output_path.empty())
      io::parallelWriteComplexFile(comm, cfg.output_path,
                                   static_cast<int>(survivors.size()), contrib);
    if (rank == 0) {
      std::map<int, io::Bytes> by_block;
      for (std::size_t i = 0; i < survivors.size(); ++i) {
        Framed f = unframe(comm.recv(par::kAny, kTagWrite));
        by_block.emplace(f.dest_block, std::move(f.packed));
      }
      ThreadedResult local;
      for (const int id : survivors) {
        io::Bytes& b = by_block.at(id);
        local.output_bytes += static_cast<std::int64_t>(b.size());
        const MsComplex c = io::unpack(b);
        const auto counts = c.liveNodeCounts();
        for (int i = 0; i < 4; ++i)
          local.node_counts[static_cast<std::size_t>(i)] += counts[i];
        local.arc_count += c.liveArcCount();
        local.outputs.push_back(std::move(b));
      }
      local.times.read = t_read1 - t_read0;
      local.times.compute = t_compute1 - t_read1;
      double prev = t_compute1;
      for (const double e : round_ends) {
        local.times.merge_rounds.push_back(e - prev);
        prev = e;
      }
      local.times.write = now() - prev;
      const std::lock_guard lock(out.mu);
      out.value = std::move(local);
    }
    sampleMetrics(cfg, rank);
    write_span.end();
    if (rec) rec->setStage(rank, causal::Stage::kIdle);
    comm.barrier();
  }, tr, cfg.auditor, cfg.causal, &ropts);

  const fault::CheckpointStore::Stats cs = store.stats();
  if (mon && reg) {
    for (int rr = 0; rr < cfg.nranks; ++rr) {
      reg->add(rr, metrics::Counter::kIntegrityVerified, mon->verified(rr));
      reg->add(rr, metrics::Counter::kIntegrityFailed, mon->failed(rr));
    }
    reg->add(0, metrics::Counter::kIntegrityHealed, mon->healedTotal());
  }
  const std::lock_guard lock(out.mu);
  out.value.recovery.respawns = coord.respawns();
  out.value.recovery.round_replays = coord.replays();
  out.value.recovery.reassigned_blocks = coord.reassignedBlocks();
  out.value.recovery.drained_messages = coord.drainedMessages();
  out.value.recovery.checkpoint_puts = cs.puts;
  out.value.recovery.checkpoint_restores = cs.restores;
  if (inj) out.value.recovery.faults_injected = inj->firedTotal();
  if (mon) {
    out.value.integrity.frames_verified = mon->verifiedTotal();
    out.value.integrity.frames_dropped = mon->failedTotal();
    out.value.integrity.heals = mon->healedTotal();
  }
}

}  // namespace

ThreadedResult runThreadedPipeline(const PipelineConfig& user_cfg) {
  const PipelineConfig cfg = withEnvOverrides(user_cfg);
  validatePipelineConfig(cfg);
  if (cfg.auditor) cfg.auditor->setBlockTimeoutSeconds(cfg.block_timeout_seconds);

  GuardedResult gres;
  if (cfg.fault.injector == nullptr && cfg.fault.recovery == fault::RecoveryMode::kOff)
    runPlain(cfg, gres);
  else
    runRecovering(cfg, gres);
  const std::lock_guard lock(gres.mu);
  return std::move(gres.value);
}

}  // namespace msc::pipeline
