#include "pipeline/threaded_pipeline.hpp"

#include <chrono>
#include <cstring>
#include <map>
#include <mutex>

#include "core/merge.hpp"
#include "decomp/decompose.hpp"
#include "io/complex_file.hpp"
#include "obs/obs.hpp"
#include "par/comm.hpp"

namespace msc::pipeline {

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kTagMergeBase = 100;  // + round
constexpr int kTagWrite = 50;

/// Message framing: [u32 dest_block_id][u32 sender_block_id][payload].
/// The sender id lets roots glue members in deterministic (block id)
/// order regardless of message arrival order, so the merged complex
/// is bit-identical to the simulated driver's.
par::Bytes frame(int dest_block, int sender_block, const io::Bytes& packed) {
  par::Bytes out(2 * sizeof(std::uint32_t) + packed.size());
  const auto d = static_cast<std::uint32_t>(dest_block);
  const auto s = static_cast<std::uint32_t>(sender_block);
  std::memcpy(out.data(), &d, sizeof(d));
  std::memcpy(out.data() + sizeof(d), &s, sizeof(s));
  std::memcpy(out.data() + 2 * sizeof(d), packed.data(), packed.size());
  return out;
}

struct Framed {
  int dest_block;
  int sender_block;
  io::Bytes packed;
};

Framed unframe(const par::Bytes& in) {
  std::uint32_t d = 0, s = 0;
  std::memcpy(&d, in.data(), sizeof(d));
  std::memcpy(&s, in.data() + sizeof(d), sizeof(s));
  io::Bytes packed(in.begin() + 2 * sizeof(d), in.end());
  return {static_cast<int>(d), static_cast<int>(s), std::move(packed)};
}

}  // namespace

ThreadedResult runThreadedPipeline(const PipelineConfig& cfg) {
  ThreadedResult result;
  std::mutex result_mu;
  obs::Tracer* const tr = cfg.tracer;

  par::Runtime::run(cfg.nranks, [&](par::Comm& comm) {
    const int rank = comm.rank();
    const std::vector<Block> blocks = decompose(cfg.domain, cfg.nblocks);

    // --- Read/sample stage.
    comm.barrier();
    const double t_read0 = now();
    std::map<int, BlockField> fields;
    {
      auto sp = obs::span(tr, rank, "read", "stage");
      for (const Block& blk : blocks) {
        if (blk.id % cfg.nranks != rank) continue;
        auto bsp = obs::span(tr, rank, "read_block", "stage");
        bsp.arg("block", blk.id);
        fields.emplace(blk.id, cfg.source.volume_path
                                   ? io::readBlock(*cfg.source.volume_path, blk,
                                                   cfg.source.sample_type)
                                   : synth::sample(blk, cfg.source.field));
      }
    }
    comm.barrier();
    const double t_read1 = now();

    // --- Compute + local simplification.
    std::map<int, MsComplex> owned;  // by root block id
    {
      auto sp = obs::span(tr, rank, "compute", "stage");
      for (auto& [id, bf] : fields) {
        auto bsp = obs::span(tr, rank, "compute_block", "stage");
        bsp.arg("block", id);
        owned.emplace(id, computeBlockComplex(cfg, bf, nullptr, nullptr, rank));
      }
    }
    fields.clear();
    comm.barrier();
    const double t_compute1 = now();

    // --- Merge rounds. Every rank derives the same schedule.
    std::vector<int> survivors(static_cast<std::size_t>(cfg.nblocks));
    for (int i = 0; i < cfg.nblocks; ++i) survivors[static_cast<std::size_t>(i)] = i;
    std::vector<double> round_ends;
    for (int r = 0; r < cfg.plan.rounds(); ++r) {
      const auto groups = cfg.plan.round(r, static_cast<int>(survivors.size()));
      const int tag = kTagMergeBase + r;
      auto round_span = obs::span(tr, rank, "merge_round", "stage");
      round_span.arg("round", r);
      // Send phase: non-root members ship their complex to the root's
      // owner and drop out.
      int expected = 0;
      for (const MergeGroup& g : groups) {
        const int root_block = survivors[static_cast<std::size_t>(g.root)];
        const int root_owner = root_block % cfg.nranks;
        for (std::size_t m = 1; m < g.members.size(); ++m) {
          const int blk = survivors[static_cast<std::size_t>(g.members[m])];
          const int owner = blk % cfg.nranks;
          if (owner == rank) {
            const auto it = owned.find(blk);
            comm.send(root_owner, tag, frame(root_block, blk, io::pack(it->second)));
            owned.erase(it);
          }
          if (root_owner == rank) ++expected;
        }
      }
      // Receive phase: roots collect, order members by block id, and
      // glue + re-simplify once per group.
      std::map<int, std::map<int, MsComplex>> incoming;  // root -> (sender -> complex)
      for (int i = 0; i < expected; ++i) {
        Framed f = unframe(comm.recv(par::kAny, tag));
        incoming[f.dest_block].emplace(f.sender_block, io::unpack(f.packed));
      }
      for (auto& [root_block, by_sender] : incoming) {
        std::vector<MsComplex> members;
        members.reserve(by_sender.size());
        for (auto& [sender, c] : by_sender) members.push_back(std::move(c));
        MsComplex& root = owned.at(root_block);
        auto gsp = obs::span(tr, rank, "glue", "stage");
        gsp.arg("root_block", root_block).arg("members", static_cast<std::int64_t>(members.size()));
        const double g0 = tr ? tr->now() : 0;
        mergeComplexes(root, std::move(members), cfg.persistence_threshold);
        root.compact();
        if (tr) tr->count(rank, obs::Counter::kGlueSeconds, tr->now() - g0);
      }
      std::vector<int> next;
      for (const MergeGroup& g : groups)
        next.push_back(survivors[static_cast<std::size_t>(g.root)]);
      survivors = std::move(next);
      round_span.end();
      comm.barrier();
      round_ends.push_back(now());
    }

    // --- Write. The output file is written collectively: offsets
    // are agreed once, then every rank writes its own blocks in
    // place (ranks with nothing to contribute still participate --
    // "null write"). Rank 0 additionally gathers the payloads to
    // populate the in-memory result.
    auto write_span = obs::span(tr, rank, "write", "stage");
    std::map<int, int> slotOf;
    for (std::size_t i = 0; i < survivors.size(); ++i)
      slotOf.emplace(survivors[i], static_cast<int>(i));
    std::vector<io::WriteContribution> contrib;
    for (auto& [id, c] : owned) {
      io::Bytes packed = io::pack(c);
      comm.send(0, kTagWrite, frame(id, id, packed));
      if (!cfg.output_path.empty()) contrib.push_back({slotOf.at(id), std::move(packed)});
    }
    if (!cfg.output_path.empty())
      io::parallelWriteComplexFile(comm, cfg.output_path,
                                   static_cast<int>(survivors.size()), contrib);
    if (rank == 0) {
      std::map<int, io::Bytes> by_block;
      for (std::size_t i = 0; i < survivors.size(); ++i) {
        Framed f = unframe(comm.recv(par::kAny, kTagWrite));
        by_block.emplace(f.dest_block, std::move(f.packed));
      }
      ThreadedResult local;
      for (const int id : survivors) {
        io::Bytes& b = by_block.at(id);
        local.output_bytes += static_cast<std::int64_t>(b.size());
        const MsComplex c = io::unpack(b);
        const auto counts = c.liveNodeCounts();
        for (int i = 0; i < 4; ++i)
          local.node_counts[static_cast<std::size_t>(i)] += counts[i];
        local.arc_count += c.liveArcCount();
        local.outputs.push_back(std::move(b));
      }
      local.times.read = t_read1 - t_read0;
      local.times.compute = t_compute1 - t_read1;
      double prev = t_compute1;
      for (const double e : round_ends) {
        local.times.merge_rounds.push_back(e - prev);
        prev = e;
      }
      local.times.write = now() - prev;
      const std::lock_guard lock(result_mu);
      result = std::move(local);
    }
    write_span.end();
    comm.barrier();
  }, cfg.tracer, cfg.auditor);

  return result;
}

}  // namespace msc::pipeline
