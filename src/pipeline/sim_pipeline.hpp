/// \file sim_pipeline.hpp
/// The simulated pipeline driver: executes Algorithm 1's tasks for
/// real (sequentially), records per-task costs and exact message byte
/// counts, and reconstructs the parallel timeline at the configured
/// rank count against the torus/I-O models. This is the repository's
/// substitute for a 32k-node Blue Gene/P run; see DESIGN.md.
#pragma once

#include "pipeline/config.hpp"
#include "simnet/timeline.hpp"

namespace msc::pipeline {

struct SimModels {
  simnet::NetworkParams net;
  simnet::IoParams io;
  simnet::CostScale scale;
};

struct SimResult {
  simnet::StageTimes times;       ///< reconstructed parallel stage times
  simnet::TimelineInputs inputs;  ///< the recorded raw costs (for ablation)
  std::vector<io::Bytes> outputs; ///< packed final complexes
  std::int64_t output_bytes{0};
  std::array<std::int64_t, 4> node_counts{};  ///< census over all outputs
  std::int64_t arc_count{0};
  double serial_seconds{0};  ///< actual wall time of the sequential execution
};

/// Run the full pipeline under simulation.
SimResult runSimPipeline(const PipelineConfig& cfg, const SimModels& models = {});

}  // namespace msc::pipeline
