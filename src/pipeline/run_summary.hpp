/// \file run_summary.hpp
/// Combined human-readable run summary: per-stage wall time from the
/// obs tracer joined with the work and memory totals from the metrics
/// registry, in one table. This is the `msc_compute_cli --summary`
/// view -- "what took the time, and how much work was that".
#pragma once

#include <iosfwd>
#include <string>

namespace msc::obs {
class Tracer;
}
namespace msc::metrics {
class Registry;
}

namespace msc::pipeline {

/// Write the combined summary. Either argument may be null: with only
/// a tracer the work/memory columns are omitted; with only a registry
/// the time column is. Both null writes a note and nothing else.
void writeRunSummary(std::ostream& os, const obs::Tracer* tracer,
                     const metrics::Registry* metrics);

std::string runSummaryText(const obs::Tracer* tracer,
                           const metrics::Registry* metrics);

}  // namespace msc::pipeline
