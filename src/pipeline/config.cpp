#include "pipeline/config.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "causal/causal.hpp"
#include "core/boundary.hpp"
#include "core/lower_star.hpp"
#include "core/simplify.hpp"
#include "decomp/decompose.hpp"
#include "fault/inject.hpp"
#include "metrics/metrics.hpp"
#include "prof/prof.hpp"

namespace msc::pipeline {

namespace {

/// Parse `name` from the environment as a double into `out`; absent
/// leaves `out` untouched, garbage throws naming the variable.
void envDouble(const char* name, double* out) {
  const char* s = std::getenv(name);
  if (!s || !*s) return;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (!end || *end != '\0')
    throw std::invalid_argument(std::string(name) + ": cannot parse '" + s +
                                "' as a number");
  *out = v;
}

void envInt(const char* name, int* out) {
  const char* s = std::getenv(name);
  if (!s || !*s) return;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (!end || *end != '\0')
    throw std::invalid_argument(std::string(name) + ": cannot parse '" + s +
                                "' as an integer");
  *out = static_cast<int>(v);
}

void envFlag(const char* name, bool* out) {
  int v = *out ? 1 : 0;
  envInt(name, &v);
  *out = v != 0;
}

[[noreturn]] void rejectConfig(const std::string& knob, const std::string& why) {
  throw std::invalid_argument("PipelineConfig: " + knob + " " + why);
}

}  // namespace

PipelineConfig withEnvOverrides(const PipelineConfig& cfg) {
  PipelineConfig out = cfg;
  envDouble("MSC_BLOCK_TIMEOUT", &out.block_timeout_seconds);
  envDouble("MSC_RECV_DEADLINE", &out.fault.recv_deadline_seconds);
  envDouble("MSC_BACKOFF_INITIAL_MS", &out.fault.backoff_initial_ms);
  envDouble("MSC_BACKOFF_MAX_MS", &out.fault.backoff_max_ms);
  envInt("MSC_MAX_ROUND_ATTEMPTS", &out.fault.max_round_attempts);
  envFlag("MSC_PREMERGE", &out.premerge);
  envFlag("MSC_SHARDED_FINAL", &out.sharded_final);
  envFlag("MSC_INTEGRITY", &out.integrity);
  envInt("MSC_CORRUPTION_RETRY_BUDGET", &out.fault.corruption_retry_budget);
  return out;
}

void validatePipelineConfig(const PipelineConfig& cfg) {
  if (cfg.nranks < 1)
    rejectConfig("nranks", "must be >= 1, got " + std::to_string(cfg.nranks));
  if (cfg.nblocks < 1)
    rejectConfig("nblocks", "must be >= 1, got " + std::to_string(cfg.nblocks));
  if (cfg.nranks > cfg.nblocks)
    rejectConfig("nranks",
                 "(" + std::to_string(cfg.nranks) + ") must not exceed nblocks (" +
                     std::to_string(cfg.nblocks) +
                     "): a rank with no block would idle through every stage");
  if (!(cfg.block_timeout_seconds > 0))
    rejectConfig("block_timeout_seconds", "must be > 0, got " +
                                              std::to_string(cfg.block_timeout_seconds));
  const FaultToleranceConfig& f = cfg.fault;
  if (!(f.recv_deadline_seconds > 0))
    rejectConfig("fault.recv_deadline_seconds",
                 "must be > 0, got " + std::to_string(f.recv_deadline_seconds));
  if (!(f.recv_deadline_seconds < cfg.block_timeout_seconds))
    rejectConfig("fault.recv_deadline_seconds",
                 "(" + std::to_string(f.recv_deadline_seconds) +
                     ") must be below block_timeout_seconds (" +
                     std::to_string(cfg.block_timeout_seconds) +
                     "): the watchdog would fire before the receive gives up");
  if (!(f.backoff_initial_ms > 0))
    rejectConfig("fault.backoff_initial_ms",
                 "must be > 0, got " + std::to_string(f.backoff_initial_ms));
  if (!(f.backoff_max_ms >= f.backoff_initial_ms))
    rejectConfig("fault.backoff_max_ms",
                 "(" + std::to_string(f.backoff_max_ms) +
                     ") must be >= backoff_initial_ms (" +
                     std::to_string(f.backoff_initial_ms) + ")");
  if (f.max_round_attempts < 1 || f.max_round_attempts > 64)
    rejectConfig("fault.max_round_attempts",
                 "must be in [1, 64] (attempt-tag stride), got " +
                     std::to_string(f.max_round_attempts));
  if (f.recovery != fault::RecoveryMode::kOff && f.max_respawns_per_rank < 1)
    rejectConfig("fault.max_respawns_per_rank",
                 "must be >= 1 when recovery is enabled, got " +
                     std::to_string(f.max_respawns_per_rank));
  if (cfg.causal && cfg.causal->nranks() < cfg.nranks)
    rejectConfig("causal",
                 "recorder sized for " + std::to_string(cfg.causal->nranks()) +
                     " ranks cannot journal a " + std::to_string(cfg.nranks) +
                     "-rank run");
  if (cfg.metrics && cfg.metrics->nranks() < cfg.nranks)
    rejectConfig("metrics",
                 "registry sized for " + std::to_string(cfg.metrics->nranks()) +
                     " ranks cannot record a " + std::to_string(cfg.nranks) +
                     "-rank run");
  if (cfg.profiler && cfg.profiler->nranks() < cfg.nranks)
    rejectConfig("profiler",
                 "sized for " + std::to_string(cfg.profiler->nranks()) +
                     " ranks cannot sample a " + std::to_string(cfg.nranks) +
                     "-rank run");
  if (f.corruption_retry_budget < 0 || f.corruption_retry_budget > 1024)
    rejectConfig("fault.corruption_retry_budget",
                 "must be in [0, 1024], got " +
                     std::to_string(f.corruption_retry_budget));
  if (f.injector) {
    const fault::InjectorOptions& iopts = f.injector->options();
    if (!cfg.integrity && (iopts.corrupt_payload_rate > 0 ||
                           iopts.corrupt_checkpoint_rate > 0 ||
                           iopts.truncate_spill_rate > 0))
      rejectConfig("fault.injector",
                   "has corruption rates > 0 but integrity checking is off: the "
                   "flips would silently corrupt the output instead of being "
                   "detected (set PipelineConfig::integrity or MSC_INTEGRITY=1)");
    if (f.recovery == fault::RecoveryMode::kOff && !cfg.auditor)
      rejectConfig("fault.injector",
                   "with recovery off requires an attached auditor: a crashed rank "
                   "must surface as a structured error, never a hang");
    if (f.recovery != fault::RecoveryMode::kOff &&
        f.max_respawns_per_rank < f.injector->options().max_crashes_per_rank)
      rejectConfig("fault.max_respawns_per_rank",
                   "(" + std::to_string(f.max_respawns_per_rank) +
                       ") must cover the injector's max_crashes_per_rank (" +
                       std::to_string(f.injector->options().max_crashes_per_rank) +
                       ") or a run can die with retries still owed");
  }
}

MsComplex computeBlockComplex(const PipelineConfig& cfg, const Block& block,
                              TraceStats* tstats, SimplifyStats* sstats, int obs_rank) {
  const BlockField bf = cfg.source.volume_path
                            ? io::readBlock(*cfg.source.volume_path, block,
                                            cfg.source.sample_type)
                            : synth::sample(block, cfg.source.field);
  return computeBlockComplex(cfg, bf, tstats, sstats, obs_rank);
}

MsComplex computeBlockComplex(const PipelineConfig& cfg, const BlockField& bf,
                              TraceStats* tstats, SimplifyStats* sstats, int obs_rank) {
  GradientOptions gopts;
  gopts.restrict_boundary = true;
  // The exact boundary-pairing rule needs the global decomposition:
  // uneven bisections have T-junctions where the block-local face
  // mask is inconsistent between neighbours (see core/boundary.hpp).
  BoundarySignatures sigs;
  if (cfg.nblocks > 1) {
    sigs = BoundarySignatures(decompose(cfg.domain, cfg.nblocks), bf.block());
    gopts.signatures = &sigs;
  }
  gopts.metrics = cfg.metrics;
  gopts.metrics_rank = obs_rank;
  auto gspan = obs::span(cfg.tracer, obs_rank, "gradient", "stage");
  const GradientField grad = cfg.algorithm == GradientAlgorithm::kSweep
                                 ? computeGradientSweep(bf, gopts)
                                 : computeGradientLowerStar(bf, gopts);
  gspan.end();

  auto tspan = obs::span(cfg.tracer, obs_rank, "trace", "stage");
  TraceOptions topts = cfg.trace;
  topts.metrics = cfg.metrics;
  topts.metrics_rank = obs_rank;
  MsComplex c = traceComplex(grad, bf, topts, tstats);
  tspan.end();

  auto sspan = obs::span(cfg.tracer, obs_rank, "simplify+pack", "stage");
  SimplifyOptions sopts;
  sopts.persistence_threshold = cfg.persistence_threshold;
  sopts.metrics = cfg.metrics;
  sopts.metrics_rank = obs_rank;
  simplify(c, sopts, sstats);
  c.compact();  // keep only the living elements for communication
  return c;
}

}  // namespace msc::pipeline
