#include "pipeline/config.hpp"

#include "core/boundary.hpp"
#include "core/lower_star.hpp"
#include "core/simplify.hpp"
#include "decomp/decompose.hpp"

namespace msc::pipeline {

MsComplex computeBlockComplex(const PipelineConfig& cfg, const Block& block,
                              TraceStats* tstats, SimplifyStats* sstats, int obs_rank) {
  const BlockField bf = cfg.source.volume_path
                            ? io::readBlock(*cfg.source.volume_path, block,
                                            cfg.source.sample_type)
                            : synth::sample(block, cfg.source.field);
  return computeBlockComplex(cfg, bf, tstats, sstats, obs_rank);
}

MsComplex computeBlockComplex(const PipelineConfig& cfg, const BlockField& bf,
                              TraceStats* tstats, SimplifyStats* sstats, int obs_rank) {
  GradientOptions gopts;
  gopts.restrict_boundary = true;
  // The exact boundary-pairing rule needs the global decomposition:
  // uneven bisections have T-junctions where the block-local face
  // mask is inconsistent between neighbours (see core/boundary.hpp).
  BoundarySignatures sigs;
  if (cfg.nblocks > 1) {
    sigs = BoundarySignatures(decompose(cfg.domain, cfg.nblocks), bf.block());
    gopts.signatures = &sigs;
  }
  auto gspan = obs::span(cfg.tracer, obs_rank, "gradient", "stage");
  const GradientField grad = cfg.algorithm == GradientAlgorithm::kSweep
                                 ? computeGradientSweep(bf, gopts)
                                 : computeGradientLowerStar(bf, gopts);
  gspan.end();

  auto tspan = obs::span(cfg.tracer, obs_rank, "trace", "stage");
  MsComplex c = traceComplex(grad, bf, cfg.trace, tstats);
  tspan.end();

  auto sspan = obs::span(cfg.tracer, obs_rank, "simplify+pack", "stage");
  SimplifyOptions sopts;
  sopts.persistence_threshold = cfg.persistence_threshold;
  simplify(c, sopts, sstats);
  c.compact();  // keep only the living elements for communication
  return c;
}

}  // namespace msc::pipeline
