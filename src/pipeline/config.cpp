#include "pipeline/config.hpp"

#include "core/lower_star.hpp"
#include "core/simplify.hpp"

namespace msc::pipeline {

MsComplex computeBlockComplex(const PipelineConfig& cfg, const Block& block,
                              TraceStats* tstats, SimplifyStats* sstats) {
  const BlockField bf = cfg.source.volume_path
                            ? io::readBlock(*cfg.source.volume_path, block,
                                            cfg.source.sample_type)
                            : synth::sample(block, cfg.source.field);
  return computeBlockComplex(cfg, bf, tstats, sstats);
}

MsComplex computeBlockComplex(const PipelineConfig& cfg, const BlockField& bf,
                              TraceStats* tstats, SimplifyStats* sstats) {
  GradientOptions gopts;
  gopts.restrict_boundary = true;
  const GradientField grad = cfg.algorithm == GradientAlgorithm::kSweep
                                 ? computeGradientSweep(bf, gopts)
                                 : computeGradientLowerStar(bf, gopts);

  MsComplex c = traceComplex(grad, bf, cfg.trace, tstats);
  SimplifyOptions sopts;
  sopts.persistence_threshold = cfg.persistence_threshold;
  simplify(c, sopts, sstats);
  c.compact();  // keep only the living elements for communication
  return c;
}

}  // namespace msc::pipeline
