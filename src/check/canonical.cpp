#include "check/canonical.hpp"

#include <algorithm>
#include <sstream>

namespace msc::check {

namespace {

CanonicalArc canonicalArc(CellAddr lower, CellAddr upper, std::vector<CellAddr> path) {
  CanonicalArc out;
  out.lower = lower;
  out.upper = upper;
  // Collapse the junction-cell duplicates composite geometries leave
  // behind, then fix the traversal direction.
  for (const CellAddr a : path)
    if (out.path.empty() || out.path.back() != a) out.path.push_back(a);
  if (!out.path.empty()) {
    const auto rbegin = out.path.rbegin(), rend = out.path.rend();
    if (std::lexicographical_compare(rbegin, rend, out.path.begin(), out.path.end()))
      std::reverse(out.path.begin(), out.path.end());
  }
  return out;
}

void finalize(CanonicalComplex& out) {
  std::sort(out.nodes.begin(), out.nodes.end());
  std::sort(out.arcs.begin(), out.arcs.end());
  for (const CanonicalNode& n : out.nodes) ++out.census[n.index];
}

}  // namespace

CanonicalComplex canonicalize(const MsComplex& c) {
  CanonicalComplex out;
  out.domain = c.domain();
  for (const Node& nd : c.nodes())
    if (nd.alive) out.nodes.push_back({nd.addr, nd.index, nd.value});
  for (const Arc& ar : c.arcs()) {
    if (!ar.alive) continue;
    out.arcs.push_back(canonicalArc(
        c.node(ar.lower).addr, c.node(ar.upper).addr,
        ar.geom == kNone ? std::vector<CellAddr>{} : c.flattenGeom(ar.geom)));
  }
  finalize(out);
  return out;
}

CanonicalComplex canonicalize(const Domain& domain, const std::vector<io::Bytes>& parts) {
  CanonicalComplex out;
  out.domain = domain;
  std::vector<CellAddr> seen;  // addresses of nodes already collected
  for (const io::Bytes& b : parts) {
    const MsComplex c = io::unpack(b);
    for (const Node& nd : c.nodes()) {
      if (!nd.alive) continue;
      if (std::find(seen.begin(), seen.end(), nd.addr) != seen.end()) continue;
      seen.push_back(nd.addr);
      out.nodes.push_back({nd.addr, nd.index, nd.value});
    }
    for (const Arc& ar : c.arcs()) {
      if (!ar.alive) continue;
      out.arcs.push_back(canonicalArc(
          c.node(ar.lower).addr, c.node(ar.upper).addr,
          ar.geom == kNone ? std::vector<CellAddr>{} : c.flattenGeom(ar.geom)));
    }
  }
  finalize(out);
  return out;
}

CheckReport compareExact(const CanonicalComplex& a, const CanonicalComplex& b) {
  CheckReport rep;
  rep.subject = "exact comparison";
  rep.checked = static_cast<std::int64_t>(a.nodes.size() + a.arcs.size());
  if (!(a.domain == b.domain)) {
    rep.fail("diff.domain", "domains differ");
    return rep;
  }
  // Report per-element differences (set differences of the sorted
  // sequences) rather than one blunt "not equal".
  std::size_t i = 0, j = 0;
  while (i < a.nodes.size() || j < b.nodes.size()) {
    const bool takeA = j >= b.nodes.size() ||
                       (i < a.nodes.size() && a.nodes[i] < b.nodes[j]);
    const bool takeB = i >= a.nodes.size() ||
                       (j < b.nodes.size() && b.nodes[j] < a.nodes[i]);
    if (takeA && takeB) {  // unreachable; keeps the invariant obvious
      ++i, ++j;
      continue;
    }
    if (takeA) {
      std::ostringstream os;
      os << "node (addr " << a.nodes[i].addr << ", index " << int(a.nodes[i].index)
         << ", value " << a.nodes[i].value << ") only in first";
      rep.fail("diff.node", os.str());
      ++i;
    } else if (takeB) {
      std::ostringstream os;
      os << "node (addr " << b.nodes[j].addr << ", index " << int(b.nodes[j].index)
         << ", value " << b.nodes[j].value << ") only in second";
      rep.fail("diff.node", os.str());
      ++j;
    } else {
      ++i, ++j;
    }
  }
  i = j = 0;
  while (i < a.arcs.size() || j < b.arcs.size()) {
    const bool takeA = j >= b.arcs.size() || (i < a.arcs.size() && a.arcs[i] < b.arcs[j]);
    const bool takeB = i >= a.arcs.size() || (j < b.arcs.size() && b.arcs[j] < a.arcs[i]);
    if (takeA) {
      std::ostringstream os;
      os << "arc " << a.arcs[i].lower << " -- " << a.arcs[i].upper << " ("
         << a.arcs[i].path.size() << " cells) only in first";
      rep.fail("diff.arc", os.str());
      ++i;
    } else if (takeB) {
      std::ostringstream os;
      os << "arc " << b.arcs[j].lower << " -- " << b.arcs[j].upper << " ("
         << b.arcs[j].path.size() << " cells) only in second";
      rep.fail("diff.arc", os.str());
      ++j;
    } else {
      ++i, ++j;
    }
  }
  return rep;
}

CheckReport compareCensus(const CanonicalComplex& serial, const CanonicalComplex& parallel,
                          bool exact_ties) {
  CheckReport rep;
  {
    std::ostringstream os;
    os << "census comparison (serial " << serial.census[0] << "/" << serial.census[1] << "/"
       << serial.census[2] << "/" << serial.census[3] << ", parallel " << parallel.census[0]
       << "/" << parallel.census[1] << "/" << parallel.census[2] << "/"
       << parallel.census[3] << ")";
    rep.subject = os.str();
  }
  rep.checked = 4;
  if (!(serial.domain == parallel.domain)) {
    rep.fail("diff.domain", "domains differ");
    return rep;
  }
  if (exact_ties) {
    // Exact ties give the serial run zero-persistence pairs of its
    // own; either side may strand some behind multi-arcs, so the
    // per-index deltas can carry either sign and only the Euler
    // characteristic is comparable.
    if (serial.chi() != parallel.chi())
      rep.fail("census.chi", "Euler characteristics differ: " +
                                 std::to_string(serial.chi()) + " vs " +
                                 std::to_string(parallel.chi()));
    return rep;
  }
  // Tie-free field: only the parallel run produces zero-persistence
  // pairs (decomposition-boundary artifacts), so its stuck pairs show
  // up as a surplus of adjacent-index pairs: `a` (min, 1-saddle), `b`
  // (1-saddle, 2-saddle) and `c` (2-saddle, max) pairs give a census
  // delta of (a, a+b, b+c, c). Anything that does not decompose this
  // way (including any deficit) is a violation; note chi equality is
  // implied by the pattern.
  const std::int64_t a = parallel.census[0] - serial.census[0];
  const std::int64_t c = parallel.census[3] - serial.census[3];
  const std::int64_t b1 = parallel.census[1] - serial.census[1] - a;
  const std::int64_t b2 = parallel.census[2] - serial.census[2] - c;
  if (a < 0)
    rep.fail("census.minima", "parallel run lost " + std::to_string(-a) + " minima");
  if (c < 0)
    rep.fail("census.maxima", "parallel run lost " + std::to_string(-c) + " maxima");
  if (b1 != b2)
    rep.fail("census.chi", "saddle surpluses differ (" + std::to_string(b1) + " vs " +
                               std::to_string(b2) + "): Euler characteristics disagree");
  else if (b1 < 0)
    rep.fail("census.surplus",
             "parallel run has fewer saddles than artifact pairs explain (" +
                 std::to_string(b1) + ")");
  return rep;
}

}  // namespace msc::check
