/// \file fuzz.hpp
/// Seeded differential fuzzing of the MS-complex pipeline.
///
/// Each seed deterministically derives a case: a synthetic field
/// (including the adversarial plateau/near-tie/thin-saddle
/// generators), a grid size, a decomposition, a rank count and a
/// persistence threshold. For each case the harness runs the serial
/// single-block pipeline and both parallel drivers over the same
/// schedule, then applies every oracle that is known to hold:
///
///  * the sequential and threaded drivers must produce byte-identical
///    outputs;
///  * every invariant checker of check.hpp must pass on the
///    decomposition, the per-block restricted gradients, the serial
///    gradient's segmentations, and the merged complexes;
///  * at threshold 0 the serial-vs-parallel census contract of
///    canonical.hpp (compareCensus) must hold.
///
/// Failures are shrunk (smaller grid, fewer blocks/ranks, threshold
/// to zero) while they keep failing, and the minimal case's inputs
/// and outputs can be dumped as repro artifacts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/grid.hpp"
#include "synth/fields.hpp"

namespace msc::check {

/// One deterministic fuzz case.
struct FuzzCase {
  unsigned seed{0};
  Vec3i vdims{8, 8, 8};
  std::string field;  ///< family name, see fieldFor()
  int nblocks{2};
  int nranks{1};
  float threshold{0.0f};
  /// Non-zero: the threaded driver is additionally run under
  /// deterministic fault injection with this injector seed, in both
  /// recovery modes, and the recovered outputs must be byte-identical
  /// to the fault-free run's.
  unsigned fault_seed{0};
  /// Run both parallel drivers with the pre-merge reduction pass on;
  /// the outputs must stay canonical-equal to the baseline run and
  /// sim/threaded must stay byte-identical to each other.
  bool premerge{false};
  /// Replace the final single-group round with the sharded exchange
  /// (merge/shard.hpp); the union of the parts must stay
  /// canonical-equal to the baseline's single root.
  bool sharded{false};

  std::string describe() const;
};

/// Bounds for case derivation (and the floor shrinking stops at).
struct FuzzLimits {
  int min_size = 6;
  int max_size = 13;
  int max_ranks = 6;
  /// Derive a non-zero fault_seed for every case (the chaos sweep).
  bool with_faults = false;
  /// Derive the premerge/sharded merge-strategy dimensions (each set
  /// on roughly half the cases, independently).
  bool with_merge_dims = false;
};

/// Derive the case a seed denotes.
FuzzCase caseFromSeed(unsigned seed, const FuzzLimits& lim = {});

/// The case's field generator (deterministic in seed and family).
synth::Field fieldFor(const FuzzCase& c);

struct FuzzOptions {
  unsigned first_seed = 0;
  int num_seeds = 100;
  FuzzLimits limits;
  bool shrink = true;
  /// When non-empty, failing cases dump repro artifacts (input
  /// volume, packed outputs, a repro description) under
  /// `<artifact_dir>/seed<N>/`.
  std::string artifact_dir;
  /// Progress/failure log (null = silent).
  std::ostream* log = nullptr;
};

struct FuzzFailure {
  FuzzCase original;                  ///< the case as derived from the seed
  FuzzCase minimal;                   ///< after shrinking (== original if not shrunk)
  std::vector<std::string> problems;  ///< oracle summaries from the minimal case
  std::string artifact_path;          ///< directory written, empty if none
};

struct FuzzSummary {
  int cases_run = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

/// Run every oracle on one case. Returns the violated oracles'
/// summaries; empty means the case passed.
std::vector<std::string> runFuzzCase(const FuzzCase& c);

/// Shrink a failing case: greedily apply size/block/rank/threshold
/// reductions while the case keeps failing.
FuzzCase shrinkCase(const FuzzCase& c, const FuzzLimits& lim, std::ostream* log = nullptr);

/// Dump repro artifacts for a case into `dir` (created if needed).
/// Returns the directory written.
std::string dumpArtifacts(const FuzzCase& c, const std::vector<std::string>& problems,
                          const std::string& dir);

/// The full sweep: derive, run, shrink, dump.
FuzzSummary runFuzzSweep(const FuzzOptions& opts);

}  // namespace msc::check
