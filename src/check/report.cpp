#include "check/check.hpp"

#include <sstream>

namespace msc::check {

void CheckReport::fail(std::string rule, std::string detail) {
  if (violations.size() >= kMaxViolations) {
    ++dropped;
    return;
  }
  violations.push_back({std::move(rule), std::move(detail)});
}

void CheckReport::merge(CheckReport other) {
  checked += other.checked;
  for (Violation& v : other.violations) {
    if (violations.size() >= kMaxViolations)
      ++dropped;
    else
      violations.push_back(std::move(v));
  }
  dropped += other.dropped;
}

std::string CheckReport::summary() const {
  std::ostringstream os;
  if (ok()) {
    os << subject << ": ok (" << checked << " elements)";
    return os.str();
  }
  os << subject << ": " << (violations.size() + static_cast<std::size_t>(dropped))
     << " violation(s)";
  for (const Violation& v : violations) os << "\n  [" << v.rule << "] " << v.detail;
  if (dropped > 0) os << "\n  ... " << dropped << " more dropped";
  return os.str();
}

}  // namespace msc::check
