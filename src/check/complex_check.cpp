#include <sstream>

#include "check/check.hpp"

namespace msc::check {

namespace {

std::string nodeStr(const MsComplex& c, NodeId n) {
  std::ostringstream os;
  const Node& nd = c.node(n);
  os << "node " << n << " (addr " << nd.addr << ", index " << int(nd.index) << ")";
  return os.str();
}

/// Consecutive path cells must differ by one unit step along exactly
/// one axis (which also flips that axis parity, i.e. steps between a
/// facet and a cofacet).
bool facetStep(Vec3i a, Vec3i b) {
  int moved = 0;
  for (int ax = 0; ax < 3; ++ax) {
    const std::int64_t d = b[ax] - a[ax];
    if (d == 1 || d == -1)
      ++moved;
    else if (d != 0)
      return false;
  }
  return moved == 1;
}

}  // namespace

CheckReport checkComplex(const MsComplex& c) {
  CheckReport rep;
  {
    std::ostringstream os;
    os << "complex (" << c.liveNodeCount() << " nodes, " << c.liveArcCount() << " arcs)";
    rep.subject = os.str();
  }
  const Domain& dom = c.domain();
  const std::int64_t ncells = dom.numCells();

  // --- Nodes: address decodes to a cell of the node's index; the
  // boundary flag matches the region; the intrusive arc list agrees
  // with the live-arc counter.
  for (std::size_t i = 0; i < c.nodes().size(); ++i) {
    const Node& nd = c.nodes()[i];
    if (!nd.alive) continue;
    ++rep.checked;
    const auto n = static_cast<NodeId>(i);
    if (nd.addr >= static_cast<CellAddr>(ncells)) {
      rep.fail("node.addr", nodeStr(c, n) + ": address outside the domain");
      continue;
    }
    const Vec3i rc = dom.coordOf(nd.addr);
    if (Domain::cellDim(rc) != nd.index)
      rep.fail("node.index", nodeStr(c, n) + ": cell dimension does not match Morse index");
    if (!c.region().contains(rc))
      rep.fail("node.region", nodeStr(c, n) + ": outside the complex's region");
    if (nd.boundary != c.region().onSharedBoundary(rc, dom))
      rep.fail("node.boundary", nodeStr(c, n) + ": stale boundary flag");
    std::int32_t walked = 0;
    c.forEachArc(n, [&](ArcId a) {
      const Arc& ar = c.arc(a);
      if (!ar.alive)
        rep.fail("node.arclist", nodeStr(c, n) + ": dead arc " + std::to_string(a) +
                                     " still linked");
      else if (ar.lower != n && ar.upper != n)
        rep.fail("node.arclist", nodeStr(c, n) + ": linked arc " + std::to_string(a) +
                                     " does not reference the node");
      ++walked;
      return true;
    });
    if (walked != nd.n_arcs)
      rep.fail("node.degree", nodeStr(c, n) + ": n_arcs=" + std::to_string(nd.n_arcs) +
                                  " but list walk found " + std::to_string(walked));
  }

  // --- Arcs: endpoints live, indices consecutive, geometry descends
  // upper -> lower through facet steps inside the region.
  for (std::size_t i = 0; i < c.arcs().size(); ++i) {
    const Arc& ar = c.arcs()[i];
    if (!ar.alive) continue;
    ++rep.checked;
    const std::string id = "arc " + std::to_string(i);
    const auto nnodes = static_cast<std::int64_t>(c.nodes().size());
    if (ar.lower < 0 || ar.lower >= nnodes || ar.upper < 0 || ar.upper >= nnodes) {
      rep.fail("arc.endpoints", id + ": endpoint id out of range");
      continue;
    }
    const Node& lo = c.node(ar.lower);
    const Node& up = c.node(ar.upper);
    if (!lo.alive || !up.alive) {
      rep.fail("arc.endpoints", id + ": joins a dead node");
      continue;
    }
    if (up.index != lo.index + 1)
      rep.fail("arc.index", id + ": joins indices " + std::to_string(lo.index) + " and " +
                                std::to_string(up.index) + ", expected consecutive");
    std::vector<CellAddr> path;
    if (ar.geom != kNone) path = c.flattenGeom(ar.geom);
    if (path.empty()) {
      rep.fail("geom.empty", id + ": no geometry");
      continue;
    }
    // Composite geometries duplicate the junction cell where two
    // child paths meet; collapse runs before the step checks.
    std::vector<CellAddr> dedup;
    dedup.reserve(path.size());
    for (const CellAddr a : path)
      if (dedup.empty() || dedup.back() != a) dedup.push_back(a);
    bool decodable = true;
    for (const CellAddr a : dedup)
      if (a >= static_cast<CellAddr>(ncells)) {
        rep.fail("geom.addr", id + ": path cell outside the domain");
        decodable = false;
        break;
      }
    if (!decodable) continue;
    if (dedup.front() != up.addr || dedup.back() != lo.addr)
      rep.fail("geom.endpoints", id + ": path does not run from the upper node's cell to " +
                                     "the lower node's cell");
    for (std::size_t k = 0; k + 1 < dedup.size(); ++k)
      if (!facetStep(dom.coordOf(dedup[k]), dom.coordOf(dedup[k + 1]))) {
        rep.fail("geom.step", id + ": non-adjacent consecutive path cells at offset " +
                                  std::to_string(k));
        break;
      }
    for (const CellAddr a : dedup)
      if (!c.region().contains(dom.coordOf(a))) {
        rep.fail("geom.region", id + ": path leaves the complex's region");
        break;
      }
  }
  return rep;
}

CheckReport checkEuler(const MsComplex& c, std::int64_t expected_chi) {
  CheckReport rep;
  const auto n = c.liveNodeCounts();
  rep.checked = n[0] + n[1] + n[2] + n[3];
  const std::int64_t chi = n[0] - n[1] + n[2] - n[3];
  std::ostringstream os;
  os << "complex Euler (census " << n[0] << "/" << n[1] << "/" << n[2] << "/" << n[3] << ")";
  rep.subject = os.str();
  if (chi != expected_chi)
    rep.fail("euler.complex", "alternating sum is " + std::to_string(chi) + ", expected " +
                                  std::to_string(expected_chi));
  return rep;
}

}  // namespace msc::check
