#include <sstream>

#include "check/check.hpp"

namespace msc::check {

namespace {

std::string blockStr(const Block& b) {
  std::ostringstream os;
  os << "block " << b.id << " [" << b.voffset << " +" << b.vdims << "]";
  return os.str();
}

}  // namespace

CheckReport checkDecomposition(const Domain& domain, const std::vector<Block>& blocks) {
  CheckReport rep;
  rep.subject = "decomposition (" + std::to_string(blocks.size()) + " blocks)";
  if (blocks.empty()) {
    rep.fail("decomp.empty", "no blocks");
    return rep;
  }

  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const Block& b = blocks[i];
    ++rep.checked;
    if (b.id != static_cast<int>(i))
      rep.fail("decomp.order", blockStr(b) + ": id does not match bisection leaf position " +
                                   std::to_string(i));
    if (!(b.domain == domain))
      rep.fail("decomp.domain", blockStr(b) + ": wrong domain reference");
    for (int a = 0; a < 3; ++a) {
      if (b.vdims[a] < 2)
        rep.fail("decomp.extent", blockStr(b) + ": fewer than two vertices along an axis");
      if (b.voffset[a] < 0 || b.voffset[a] + b.vdims[a] > domain.vdims[a])
        rep.fail("decomp.bounds", blockStr(b) + ": extends outside the domain");
      // Every interior face of a tiling must be shared with some
      // neighbour; a domain-boundary face cannot be.
      const bool lo_interior = b.voffset[a] > 0;
      const bool hi_interior = b.voffset[a] + b.vdims[a] < domain.vdims[a];
      if (b.shared_lo[a] != lo_interior)
        rep.fail("decomp.flags", blockStr(b) + ": shared_lo inconsistent on axis " +
                                     std::to_string(a));
      if (b.shared_hi[a] != hi_interior)
        rep.fail("decomp.flags", blockStr(b) + ": shared_hi inconsistent on axis " +
                                     std::to_string(a));
    }
  }

  // Coverage vote: every vertex covered at least once; any vertex
  // covered more than once must lie in the one-vertex-deep ghost
  // layer of *every* block covering it (neighbouring blocks share
  // exactly one vertex layer).
  const std::int64_t nverts = domain.vdims.volume();
  if (nverts > (std::int64_t(1) << 26)) return rep;  // vote array too large; skip
  std::vector<std::uint8_t> votes(static_cast<std::size_t>(nverts), 0);
  const auto vid = [&](Vec3i vc) {
    return static_cast<std::size_t>(vc.x + vc.y * domain.vdims.x +
                                    vc.z * domain.vdims.x * domain.vdims.y);
  };
  for (const Block& b : blocks)
    for (std::int64_t z = 0; z < b.vdims.z; ++z)
      for (std::int64_t y = 0; y < b.vdims.y; ++y)
        for (std::int64_t x = 0; x < b.vdims.x; ++x) {
          const Vec3i g = Vec3i{x, y, z} + b.voffset;
          auto& v = votes[vid(g)];
          if (v < 255) ++v;
        }
  rep.checked += nverts;
  for (std::int64_t z = 0; z < domain.vdims.z; ++z)
    for (std::int64_t y = 0; y < domain.vdims.y; ++y)
      for (std::int64_t x = 0; x < domain.vdims.x; ++x) {
        const Vec3i g{x, y, z};
        const std::uint8_t v = votes[vid(g)];
        if (v == 0) {
          std::ostringstream os;
          os << "vertex " << g << " is not covered by any block";
          rep.fail("decomp.gap", os.str());
          continue;
        }
        if (v == 1) continue;
        for (const Block& b : blocks) {
          const Vec3i l = g - b.voffset;
          if (l.x < 0 || l.y < 0 || l.z < 0 || l.x >= b.vdims.x || l.y >= b.vdims.y ||
              l.z >= b.vdims.z)
            continue;
          bool on_face = false;
          for (int a = 0; a < 3; ++a)
            on_face = on_face || l[a] == 0 || l[a] == b.vdims[a] - 1;
          if (!on_face) {
            std::ostringstream os;
            os << "vertex " << g << " is shared but interior to " << blockStr(b);
            rep.fail("decomp.overlap", os.str());
          }
        }
      }
  return rep;
}

}  // namespace msc::check
