/// \file check.hpp
/// Structural invariant checkers for every artifact the pipeline
/// produces: discrete gradients, MS-complex 1-skeletons, domain
/// decompositions and Morse segmentations.
///
/// Unlike the assert-style helpers that preceded them (and unlike
/// MsComplex::checkInvariants, which aborts), these checkers *report*:
/// each returns a CheckReport listing every violated rule with enough
/// detail to locate the defect. That makes them usable both from unit
/// tests (EXPECT the report is ok) and from the fuzz harness, which
/// needs to keep running, shrink the failing case, and dump artifacts
/// after a violation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/segmentation.hpp"
#include "core/complex.hpp"
#include "core/gradient.hpp"

namespace msc::check {

/// One violated rule instance.
struct Violation {
  std::string rule;    ///< stable dotted identifier, e.g. "pairing.mutual"
  std::string detail;  ///< human-readable location/values
};

/// Outcome of one checker run. Violations are capped (a corrupt input
/// can violate a rule at every cell); `dropped` counts the overflow so
/// a truncated report never reads as cleaner than it is.
struct CheckReport {
  /// What was checked, e.g. "gradient 17x17x9".
  std::string subject;
  /// Number of elements examined (cells, nodes+arcs, blocks, labels).
  std::int64_t checked = 0;
  std::vector<Violation> violations;
  std::int64_t dropped = 0;

  static constexpr std::size_t kMaxViolations = 64;

  bool ok() const { return violations.empty() && dropped == 0; }

  /// Record a violation (or bump `dropped` once the cap is reached).
  void fail(std::string rule, std::string detail);

  /// Fold another checker's findings into this report.
  void merge(CheckReport other);

  /// One line when ok; otherwise a multi-line listing of violations.
  std::string summary() const;
};

// --- Discrete gradient validity ------------------------------------

/// Every cell assigned; pairs are mutual, facet/cofacet, in range.
CheckReport checkPairing(const GradientField& g);

/// Alternating critical-count sum equals the Euler characteristic of
/// the block (a solid box: 1).
CheckReport checkGradientEuler(const GradientField& g);

/// No V-path cycles in any (d-1, d) layer.
CheckReport checkAcyclic(const GradientField& g);

/// All of the above.
CheckReport checkGradient(const GradientField& g);

// --- MS complex 1-skeleton -----------------------------------------

/// Well-formedness of the 1-skeleton: live arcs join live nodes of
/// consecutive Morse index; node addresses decode to cells of the
/// node's index inside the domain; intrusive arc lists agree with the
/// per-node live-arc counts; arc geometry descends from the upper
/// node's cell to the lower node's cell through facet-adjacent cells
/// that stay inside the complex's region; boundary flags match the
/// region.
CheckReport checkComplex(const MsComplex& c);

/// Morse-Euler consistency: the alternating node-count sum equals
/// `expected_chi` (1 for any complex whose region is a solid box,
/// including the fully merged domain).
CheckReport checkEuler(const MsComplex& c, std::int64_t expected_chi = 1);

// --- Domain decomposition ------------------------------------------

/// Blocks tile the domain: every vertex is covered, blocks overlap
/// only in their shared one-vertex-deep ghost layers, shared-face
/// flags are consistent with the geometry, and ids follow the
/// bisection leaf order.
CheckReport checkDecomposition(const Domain& domain, const std::vector<Block>& blocks);

// --- Morse segmentation --------------------------------------------

/// Which element grid a segmentation labels.
enum class SegmentationKind { kMinima, kMaxima };

/// The labelling is a partition consistent with the gradient flow:
/// sizes match the element grid, every element is labelled, every
/// label is in range, seeds are critical cells of the right dimension,
/// and each element's label equals the region of the critical cell its
/// V-path terminates at (recomputed here by an independent walk).
CheckReport checkSegmentation(const analysis::Segmentation& seg, const GradientField& g,
                              SegmentationKind kind);

}  // namespace msc::check
