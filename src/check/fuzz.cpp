#include "check/fuzz.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "check/canonical.hpp"
#include "check/check.hpp"
#include "core/boundary.hpp"
#include "core/lower_star.hpp"
#include "decomp/decompose.hpp"
#include "fault/inject.hpp"
#include "fault/recovery.hpp"
#include "io/complex_file.hpp"
#include "pipeline/sim_pipeline.hpp"
#include "pipeline/threaded_pipeline.hpp"

namespace msc::check {

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Block-count choices, smallest first (the shrinker walks left).
/// Non-powers of two exercise the uneven bisections whose T-junctions
/// broke the block-local pairing rule (core/boundary.hpp).
constexpr int kBlockChoices[] = {2, 3, 4, 5, 6, 8, 12, 16};

/// Field families, adversarial generators weighted double.
constexpr const char* kFamilies[] = {
    "noise",    "noise", "plateaus",    "plateaus", "nearTies", "nearTies",
    "thinSaddles", "thinSaddles", "ramp", "cosine",   "sinusoid", "hydrogen",
    "jet",      "rt"};

pipeline::PipelineConfig configFor(const FuzzCase& c, int nblocks, int nranks) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{c.vdims};
  cfg.source.field = fieldFor(c);
  cfg.nblocks = nblocks;
  cfg.nranks = nranks;
  cfg.persistence_threshold = c.threshold;
  cfg.plan = MergePlan::fullMerge(nblocks);
  return cfg;
}

void reportProblem(std::vector<std::string>& problems, const CheckReport& rep,
                   const std::string& where) {
  if (!rep.ok()) problems.push_back(where + ": " + rep.summary());
}

}  // namespace

std::string FuzzCase::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " grid=" << vdims.x << "x" << vdims.y << "x" << vdims.z
     << " field=" << field << " nblocks=" << nblocks << " nranks=" << nranks
     << " threshold=" << threshold;
  if (fault_seed != 0) os << " fault_seed=" << fault_seed;
  if (premerge) os << " premerge";
  if (sharded) os << " sharded";
  return os.str();
}

FuzzCase caseFromSeed(unsigned seed, const FuzzLimits& lim) {
  FuzzCase c;
  c.seed = seed;
  const std::uint64_t h = splitmix(static_cast<std::uint64_t>(seed) * 0x51ED2701u + 17);
  const int span = lim.max_size - lim.min_size + 1;
  c.vdims = {lim.min_size + static_cast<int>(h % span),
             lim.min_size + static_cast<int>((h >> 8) % span),
             lim.min_size + static_cast<int>((h >> 16) % span)};
  c.field = kFamilies[(h >> 24) % std::size(kFamilies)];
  c.nblocks = kBlockChoices[(h >> 32) % std::size(kBlockChoices)];
  // The pipeline rejects nranks > nblocks (a rank with no block), so
  // the derivation clamps to the block count.
  c.nranks = std::min(1 + static_cast<int>((h >> 40) % lim.max_ranks), c.nblocks);
  // Mostly threshold 0 (where the serial-vs-parallel census contract
  // applies); sometimes a positive threshold to fuzz the hierarchy.
  const int tsel = static_cast<int>((h >> 48) % 10);
  c.threshold = tsel < 7 ? 0.0f : (tsel == 7 ? 0.05f : (tsel == 8 ? 0.15f : 0.3f));
  if (lim.with_faults)
    c.fault_seed = static_cast<unsigned>(splitmix(h ^ 0xFA17u) | 1u);  // non-zero
  if (lim.with_merge_dims) {
    // A fresh hash keeps the base-case derivation above untouched:
    // the same seed denotes the same field/grid/schedule with or
    // without the merge-strategy dimensions layered on.
    const std::uint64_t h2 = splitmix(h ^ 0xD157u);
    c.premerge = (h2 & 1) != 0;
    c.sharded = (h2 & 2) != 0;
  }
  return c;
}

synth::Field fieldFor(const FuzzCase& c) {
  const Domain d{c.vdims};
  if (c.field == "noise") return synth::noise(c.seed);
  if (c.field == "plateaus") return synth::plateaus(c.seed, 3 + static_cast<int>(c.seed % 4));
  if (c.field == "nearTies") return synth::nearTies(c.seed);
  if (c.field == "thinSaddles") return synth::thinSaddles(d, c.seed);
  if (c.field == "ramp") return synth::ramp();
  if (c.field == "cosine") return synth::cosineProduct(d, 1 + static_cast<int>(c.seed % 3));
  if (c.field == "sinusoid") return synth::sinusoid(d, 2 + static_cast<int>(c.seed % 3));
  if (c.field == "hydrogen") return synth::hydrogenLike(d);
  if (c.field == "jet") return synth::jetLike(d, c.seed);
  if (c.field == "rt") return synth::rtLike(d, c.seed);
  return synth::noise(c.seed);  // unknown family: degrade gracefully
}

std::vector<std::string> runFuzzCase(const FuzzCase& c) {
  std::vector<std::string> problems;
  const Domain domain{c.vdims};
  const synth::Field field = fieldFor(c);

  // --- Decomposition invariants.
  const std::vector<Block> blocks = decompose(domain, c.nblocks);
  reportProblem(problems, checkDecomposition(domain, blocks), "decomposition");

  // --- Per-block restricted gradients (the exact IV-C rule).
  for (const Block& blk : blocks) {
    GradientOptions gopts;
    gopts.restrict_boundary = true;
    const BoundarySignatures sigs(blocks, blk);
    gopts.signatures = &sigs;
    const GradientField grad =
        computeGradientLowerStar(synth::sample(blk, field), gopts);
    reportProblem(problems, checkGradient(grad),
                  "block " + std::to_string(blk.id) + " gradient");
  }

  // --- Serial gradient + its segmentations.
  const std::vector<Block> whole = decompose(domain, 1);
  GradientOptions serial_gopts;
  serial_gopts.restrict_boundary = false;
  const GradientField serial_grad =
      computeGradientLowerStar(synth::sample(whole[0], field), serial_gopts);
  reportProblem(problems, checkGradient(serial_grad), "serial gradient");
  reportProblem(problems,
                checkSegmentation(analysis::segmentByMinima(serial_grad), serial_grad,
                                  SegmentationKind::kMinima),
                "minima segmentation");
  reportProblem(problems,
                checkSegmentation(analysis::segmentByMaxima(serial_grad), serial_grad,
                                  SegmentationKind::kMaxima),
                "maxima segmentation");

  // --- The three pipeline runs.
  const pipeline::PipelineConfig par = configFor(c, c.nblocks, c.nranks);
  const pipeline::SimResult sim = pipeline::runSimPipeline(par);
  const pipeline::ThreadedResult thr = pipeline::runThreadedPipeline(par);
  const pipeline::PipelineConfig ser = configFor(c, 1, 1);
  const pipeline::SimResult serial = pipeline::runSimPipeline(ser);

  // --- Differential leg 1: the two parallel drivers execute the same
  // schedule and must agree to the byte.
  bool bytes_equal = sim.outputs.size() == thr.outputs.size();
  for (std::size_t i = 0; bytes_equal && i < sim.outputs.size(); ++i)
    bytes_equal = sim.outputs[i] == thr.outputs[i];
  if (!bytes_equal) {
    problems.push_back("sequential and threaded drivers produced different bytes");
    // Locate the difference for the report.
    const CanonicalComplex a = canonicalize(domain, sim.outputs);
    const CanonicalComplex b = canonicalize(domain, thr.outputs);
    reportProblem(problems, compareExact(a, b), "sim vs threaded");
  }

  // --- Differential leg 1c (merge strategy): with the pre-merge
  // reduction and/or the sharded final round switched on, the two
  // parallel drivers must still agree to the byte, and the (union of)
  // outputs must be canonical-equal to the baseline schedule's.
  pipeline::ThreadedResult thr_variant;
  const pipeline::ThreadedResult* fault_reference = &thr;
  if (c.premerge || c.sharded) {
    pipeline::PipelineConfig vcfg = configFor(c, c.nblocks, c.nranks);
    vcfg.premerge = c.premerge;
    vcfg.sharded_final = c.sharded;
    const pipeline::SimResult sim_v = pipeline::runSimPipeline(vcfg);
    thr_variant = pipeline::runThreadedPipeline(vcfg);
    bool v_equal = sim_v.outputs.size() == thr_variant.outputs.size();
    for (std::size_t i = 0; v_equal && i < sim_v.outputs.size(); ++i)
      v_equal = sim_v.outputs[i] == thr_variant.outputs[i];
    if (!v_equal)
      problems.push_back(
          "merge-strategy variant: sequential and threaded drivers "
          "produced different bytes");
    const CanonicalComplex base_c = canonicalize(domain, sim.outputs);
    const CanonicalComplex var_c = canonicalize(domain, sim_v.outputs);
    reportProblem(problems, compareExact(base_c, var_c),
                  "merge-strategy variant vs baseline");
    // The chaos leg below replays the same knobs, so its reference
    // bytes are the variant's fault-free run.
    fault_reference = &thr_variant;
  }

  // --- Differential leg 1b (chaos): under deterministic fault
  // injection, the recovered run must reproduce the fault-free bytes
  // exactly, in both recovery modes.
  if (c.fault_seed != 0) {
    for (const fault::RecoveryMode mode :
         {fault::RecoveryMode::kRespawn, fault::RecoveryMode::kDegrade}) {
      fault::InjectorOptions fopts;
      fopts.seed = c.fault_seed;
      fault::Injector injector(c.nranks, fopts);
      pipeline::PipelineConfig fcfg = configFor(c, c.nblocks, c.nranks);
      fcfg.premerge = c.premerge;
      fcfg.sharded_final = c.sharded;
      fcfg.fault.injector = &injector;
      fcfg.fault.recovery = mode;
      fcfg.fault.recv_deadline_seconds = 2.0;
      fcfg.fault.max_round_attempts = 32;
      fcfg.fault.max_respawns_per_rank = fopts.max_crashes_per_rank;
      const std::string leg =
          std::string("chaos (") + fault::recoveryModeName(mode) + ")";
      try {
        const pipeline::ThreadedResult faulty = pipeline::runThreadedPipeline(fcfg);
        bool same = faulty.outputs.size() == fault_reference->outputs.size();
        for (std::size_t i = 0; same && i < faulty.outputs.size(); ++i)
          same = faulty.outputs[i] == fault_reference->outputs[i];
        if (!same) {
          problems.push_back(leg + ": recovered run diverged from fault-free bytes");
          const CanonicalComplex a = canonicalize(domain, fault_reference->outputs);
          const CanonicalComplex b = canonicalize(domain, faulty.outputs);
          reportProblem(problems, compareExact(a, b), leg);
        }
      } catch (const fault::RecoveryError& e) {
        // Total loss (every rank dead in degrade mode) is a legal
        // graceful-degradation outcome: a structured error, never a
        // hang or silent divergence. Anything else is a bug.
        if (std::string(e.what()).find("no live ranks") == std::string::npos)
          problems.push_back(leg + ": run failed: " + e.what());
      } catch (const std::exception& e) {
        problems.push_back(leg + ": run failed: " + e.what());
      }
    }
  }

  // --- Invariants on the merged outputs.
  for (std::size_t i = 0; i < sim.outputs.size(); ++i) {
    const MsComplex merged = io::unpack(sim.outputs[i]);
    reportProblem(problems, checkComplex(merged), "merged output " + std::to_string(i));
  }
  if (sim.outputs.size() == 1) {
    // A full merge covers the whole domain: chi of a solid box is 1.
    reportProblem(problems, checkEuler(io::unpack(sim.outputs[0]), 1), "merged output");
  }
  for (std::size_t i = 0; i < serial.outputs.size(); ++i) {
    const MsComplex sc = io::unpack(serial.outputs[i]);
    reportProblem(problems, checkComplex(sc), "serial output " + std::to_string(i));
    reportProblem(problems, checkEuler(sc, 1), "serial output");
  }

  // --- Differential leg 2: serial vs parallel census at threshold 0.
  if (c.threshold == 0.0f && sim.outputs.size() == 1) {
    // Exact value ties (plateau-style fields) weaken the contract to
    // chi equality; detect them from the sampled volume itself rather
    // than trusting the family name.
    std::vector<float> vals = synth::sampleAll(domain, field);
    std::sort(vals.begin(), vals.end());
    const bool ties = std::adjacent_find(vals.begin(), vals.end()) != vals.end();
    const CanonicalComplex s = canonicalize(domain, serial.outputs);
    const CanonicalComplex p = canonicalize(domain, sim.outputs);
    reportProblem(problems, compareCensus(s, p, ties), "serial vs parallel");
  }
  return problems;
}

FuzzCase shrinkCase(const FuzzCase& c, const FuzzLimits& lim, std::ostream* log) {
  FuzzCase cur = c;
  const auto fails = [](const FuzzCase& cand) { return !runFuzzCase(cand).empty(); };
  for (int round = 0; round < 32; ++round) {
    std::vector<FuzzCase> candidates;
    // The merge-strategy dimensions shrink away first: a failure that
    // survives without them is a baseline bug, not a premerge/sharded
    // bug, and the simpler repro wins.
    if (cur.sharded) {
      FuzzCase t = cur;
      t.sharded = false;
      candidates.push_back(t);
    }
    if (cur.premerge) {
      FuzzCase t = cur;
      t.premerge = false;
      candidates.push_back(t);
    }
    if (cur.fault_seed != 0) {
      // If the failure survives without injection it is not a fault
      // bug — the simpler repro wins.
      FuzzCase t = cur;
      t.fault_seed = 0;
      candidates.push_back(t);
    }
    if (cur.threshold != 0.0f) {
      FuzzCase t = cur;
      t.threshold = 0.0f;
      candidates.push_back(t);
    }
    if (cur.nranks > 1) {
      FuzzCase t = cur;
      t.nranks = 1;
      candidates.push_back(t);
    }
    for (int a = 0; a < 3; ++a) {
      if (cur.vdims[a] <= lim.min_size) continue;
      FuzzCase t = cur;
      t.vdims[a] = std::max<std::int64_t>(lim.min_size, (cur.vdims[a] + lim.min_size) / 2);
      candidates.push_back(t);
      if (t.vdims[a] != cur.vdims[a] - 1) {
        FuzzCase u = cur;
        u.vdims[a] = cur.vdims[a] - 1;
        candidates.push_back(u);
      }
    }
    for (std::size_t bi = std::size(kBlockChoices); bi-- > 0;) {
      if (kBlockChoices[bi] < cur.nblocks) {
        FuzzCase t = cur;
        t.nblocks = kBlockChoices[bi];
        candidates.push_back(t);
        break;
      }
    }
    bool reduced = false;
    for (const FuzzCase& cand : candidates) {
      if (fails(cand)) {
        cur = cand;
        reduced = true;
        if (log) *log << "  shrink -> " << cur.describe() << "\n";
        break;
      }
    }
    if (!reduced) break;
  }
  return cur;
}

std::string dumpArtifacts(const FuzzCase& c, const std::vector<std::string>& problems,
                          const std::string& dir) {
  std::filesystem::create_directories(dir);
  const Domain domain{c.vdims};
  const synth::Field field = fieldFor(c);

  io::writeVolume(dir + "/input.f32", domain, synth::sampleAll(domain, field),
                  io::SampleType::kFloat32);

  pipeline::PipelineConfig par = configFor(c, c.nblocks, c.nranks);
  par.output_path = dir + "/parallel.msc";
  pipeline::runSimPipeline(par);
  pipeline::PipelineConfig ser = configFor(c, 1, 1);
  ser.output_path = dir + "/serial.msc";
  pipeline::runSimPipeline(ser);

  std::ofstream repro(dir + "/repro.txt");
  repro << "msc_fuzz repro\n" << c.describe() << "\n\n"
        << "input.f32: raw float32 volume, x-fastest, " << c.vdims.x << "x" << c.vdims.y
        << "x" << c.vdims.z << "\n"
        << "parallel.msc / serial.msc: io::writeComplexFile containers\n\n"
        << "problems:\n";
  for (const std::string& p : problems) repro << "  " << p << "\n";
  return dir;
}

FuzzSummary runFuzzSweep(const FuzzOptions& opts) {
  FuzzSummary sum;
  for (int i = 0; i < opts.num_seeds; ++i) {
    const unsigned seed = opts.first_seed + static_cast<unsigned>(i);
    const FuzzCase c = caseFromSeed(seed, opts.limits);
    std::vector<std::string> problems = runFuzzCase(c);
    ++sum.cases_run;
    if (opts.log && (i + 1) % 50 == 0)
      *opts.log << "[fuzz] " << (i + 1) << "/" << opts.num_seeds << " cases, "
                << sum.failures.size() << " failures\n";
    if (problems.empty()) continue;

    FuzzFailure f;
    f.original = c;
    if (opts.log) {
      *opts.log << "[fuzz] FAIL " << c.describe() << "\n";
      for (const std::string& p : problems) *opts.log << "  " << p << "\n";
    }
    f.minimal = opts.shrink ? shrinkCase(c, opts.limits, opts.log) : c;
    f.problems = opts.shrink ? runFuzzCase(f.minimal) : std::move(problems);
    if (f.problems.empty()) f.problems = runFuzzCase(f.original);  // shrink went flaky
    if (!opts.artifact_dir.empty())
      f.artifact_path = dumpArtifacts(
          f.minimal, f.problems, opts.artifact_dir + "/seed" + std::to_string(seed));
    if (opts.log && !f.artifact_path.empty())
      *opts.log << "[fuzz] artifacts: " << f.artifact_path << "\n";
    sum.failures.push_back(std::move(f));
  }
  return sum;
}

}  // namespace msc::check
