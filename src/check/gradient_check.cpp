#include <sstream>

#include "check/check.hpp"

namespace msc::check {

namespace {

std::string coordStr(Vec3i rc) {
  std::ostringstream os;
  os << rc;
  return os.str();
}

std::string subjectFor(const GradientField& g, const char* what) {
  const Vec3i r = g.block().rdims();
  std::ostringstream os;
  os << what << " " << r.x << "x" << r.y << "x" << r.z << " (block " << g.block().id << ")";
  return os.str();
}

}  // namespace

CheckReport checkPairing(const GradientField& g) {
  CheckReport rep;
  rep.subject = subjectFor(g, "gradient pairing");
  const Block& blk = g.block();
  const Vec3i r = blk.rdims();
  for (std::int64_t z = 0; z < r.z; ++z)
    for (std::int64_t y = 0; y < r.y; ++y)
      for (std::int64_t x = 0; x < r.x; ++x) {
        const Vec3i rc{x, y, z};
        ++rep.checked;
        const std::uint8_t s = g.stateAt(rc);
        if (s == kUnassigned) {
          rep.fail("pairing.assigned", "unassigned cell at " + coordStr(rc));
          continue;
        }
        if (s == kCritical) continue;
        if (s > kPairPosZ) {
          rep.fail("pairing.state", "invalid state byte at " + coordStr(rc));
          continue;
        }
        const Vec3i p = g.partner(rc);
        if (p.x < 0 || p.y < 0 || p.z < 0 || p.x >= r.x || p.y >= r.y || p.z >= r.z) {
          rep.fail("pairing.range", "partner of " + coordStr(rc) + " out of block");
          continue;
        }
        if (g.partner(p) != rc)
          rep.fail("pairing.mutual", "pairing not mutual at " + coordStr(rc));
        const int dd = Domain::cellDim(p) - Domain::cellDim(rc);
        if (dd != 1 && dd != -1)
          rep.fail("pairing.dim", "pair at " + coordStr(rc) + " is not facet/cofacet");
      }
  return rep;
}

CheckReport checkGradientEuler(const GradientField& g) {
  CheckReport rep;
  rep.subject = subjectFor(g, "gradient Euler");
  const auto c = g.criticalCounts();
  rep.checked = c[0] + c[1] + c[2] + c[3];
  const std::int64_t chi = c[0] - c[1] + c[2] - c[3];
  if (chi != 1) {
    std::ostringstream os;
    os << "critical counts " << c[0] << "/" << c[1] << "/" << c[2] << "/" << c[3]
       << " sum to chi=" << chi << ", expected 1";
    rep.fail("euler.block", os.str());
  }
  return rep;
}

CheckReport checkAcyclic(const GradientField& g) {
  CheckReport rep;
  rep.subject = subjectFor(g, "gradient acyclicity");
  const Block& blk = g.block();
  const Vec3i r = blk.rdims();
  const auto n = static_cast<std::size_t>(blk.numCells());
  // Colors: 0 = unvisited, 1 = on stack, 2 = done. Only tail cells
  // participate (we step tail -> head -> next tails).
  std::array<Vec3i, 6> fs;
  for (int layer = 0; layer < 3; ++layer) {
    std::vector<std::uint8_t> color(n, 0);
    std::vector<std::pair<LocalCell, int>> stack;
    for (std::int64_t z = 0; z < r.z; ++z)
      for (std::int64_t y = 0; y < r.y; ++y)
        for (std::int64_t x = 0; x < r.x; ++x) {
          const Vec3i start{x, y, z};
          if (Domain::cellDim(start) != layer || !g.isTail(start)) continue;
          ++rep.checked;
          const LocalCell si = blk.cellIndex(start);
          if (color[si] == 2) continue;
          stack.clear();
          stack.push_back({si, 0});
          color[si] = 1;
          while (!stack.empty()) {
            auto& [ci, next] = stack.back();
            const Vec3i rc = blk.cellCoord(ci);
            const Vec3i head = g.partner(rc);
            const int nf = facets(head, r, fs);
            bool pushed = false;
            while (next < nf) {
              const Vec3i cand = fs[next++];
              if (cand == rc || !g.isTail(cand)) continue;
              const LocalCell cj = blk.cellIndex(cand);
              if (color[cj] == 1) {
                rep.fail("vpath.cycle", "V-path cycle through " + coordStr(cand) +
                                            " in layer " + std::to_string(layer));
                // The cycle would be re-reported from every cell on
                // it; one finding per start cell is enough.
                continue;
              }
              if (color[cj] == 0) {
                color[cj] = 1;
                stack.push_back({cj, 0});
                pushed = true;
                break;
              }
            }
            if (!pushed && next >= nf) {
              color[ci] = 2;
              stack.pop_back();
            }
          }
        }
  }
  return rep;
}

CheckReport checkGradient(const GradientField& g) {
  CheckReport rep = checkPairing(g);
  rep.subject = subjectFor(g, "gradient");
  rep.merge(checkGradientEuler(g));
  // A broken pairing makes partner() walks unreliable; only chase
  // V-paths once the pairing itself is sound.
  if (rep.violations.empty()) rep.merge(checkAcyclic(g));
  return rep;
}

}  // namespace msc::check
