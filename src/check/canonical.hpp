/// \file canonical.hpp
/// Canonical forms of MS complexes and the comparison policies of the
/// differential oracle.
///
/// Two comparison strengths are provided, matching what actually
/// holds for this pipeline (established empirically; see DESIGN.md,
/// "Correctness & fuzzing"):
///
///  * compareExact — full node/arc/geometry equality after sorting.
///    Holds between the sequential and threaded drivers of the *same*
///    parallel schedule, which are bit-identical by construction.
///
///  * compareCensus — the serial-vs-parallel contract at persistence
///    threshold 0. Either run may be unable to cancel a
///    zero-persistence pair whose nodes are joined by more than one
///    arc (cancellation requires a single arc), so stuck pairs are
///    tolerated but must decompose into adjacent-index pairs:
///      - tie-free field: only the parallel run produces
///        zero-persistence pairs (decomposition-boundary artifacts),
///        so its census surplus must be (a, a+b, b+c, c) with
///        a, b, c >= 0 and the serial census is a floor;
///      - field with exact value ties: the serial run has
///        zero-persistence pairs of its own and either side may
///        strand some, so only the Euler characteristic must agree.
#pragma once

#include "check/check.hpp"
#include "io/pack.hpp"

namespace msc::check {

struct CanonicalNode {
  CellAddr addr{kNoCell};
  std::uint8_t index{0};
  float value{0};

  friend auto operator<=>(const CanonicalNode&, const CanonicalNode&) = default;
};

struct CanonicalArc {
  CellAddr lower{kNoCell}, upper{kNoCell};
  /// Flattened path, consecutive duplicates collapsed; stored in the
  /// lexicographically smaller of the two traversal directions so the
  /// comparison is orientation-independent.
  std::vector<CellAddr> path;

  friend auto operator<=>(const CanonicalArc&, const CanonicalArc&) = default;
};

/// Order- and id-independent form of a complex's living 1-skeleton.
struct CanonicalComplex {
  Domain domain;
  std::array<std::int64_t, 4> census{0, 0, 0, 0};
  std::vector<CanonicalNode> nodes;  ///< sorted
  std::vector<CanonicalArc> arcs;    ///< sorted

  std::int64_t chi() const { return census[0] - census[1] + census[2] - census[3]; }
};

CanonicalComplex canonicalize(const MsComplex& c);

/// Canonicalize the union of packed pipeline outputs. Nodes shared by
/// several parts (unresolved boundary nodes of a partial merge) are
/// deduplicated by address.
CanonicalComplex canonicalize(const Domain& domain, const std::vector<io::Bytes>& parts);

/// Full equality of nodes and arcs (with geometry).
CheckReport compareExact(const CanonicalComplex& a, const CanonicalComplex& b);

/// The serial-vs-parallel census contract at threshold 0 (see file
/// comment). Pass `exact_ties = true` when the input field holds the
/// same value at two or more vertices: stuck pairs then occur on both
/// sides and only chi equality remains checkable.
CheckReport compareCensus(const CanonicalComplex& serial, const CanonicalComplex& parallel,
                          bool exact_ties = false);

}  // namespace msc::check
