#include <map>
#include <sstream>

#include "check/check.hpp"

namespace msc::check {

namespace {

std::string coordStr(Vec3i rc) {
  std::ostringstream os;
  os << rc;
  return os.str();
}

}  // namespace

CheckReport checkSegmentation(const analysis::Segmentation& seg, const GradientField& g,
                              SegmentationKind kind) {
  CheckReport rep;
  rep.subject = std::string("segmentation (") +
                (kind == SegmentationKind::kMinima ? "minima" : "maxima") + ", " +
                std::to_string(seg.regionCount()) + " regions)";
  const Block& blk = g.block();
  const Vec3i r = blk.rdims();
  const int seed_dim = kind == SegmentationKind::kMinima ? 0 : 3;

  // --- Seeds: distinct critical cells of the right dimension, and
  // exactly the critical cells of that dimension.
  std::map<LocalCell, std::int32_t> seedOf;
  for (std::size_t s = 0; s < seg.seeds.size(); ++s) {
    const Vec3i rc = seg.seeds[s];
    ++rep.checked;
    if (rc.x < 0 || rc.y < 0 || rc.z < 0 || rc.x >= r.x || rc.y >= r.y || rc.z >= r.z) {
      rep.fail("seg.seed", "seed " + std::to_string(s) + " at " + coordStr(rc) +
                               " outside the block");
      continue;
    }
    if (Domain::cellDim(rc) != seed_dim)
      rep.fail("seg.seed", "seed " + std::to_string(s) + " at " + coordStr(rc) +
                               " is not a " + std::to_string(seed_dim) + "-cell");
    else if (!g.isCritical(rc))
      rep.fail("seg.seed", "seed " + std::to_string(s) + " at " + coordStr(rc) +
                               " is not critical");
    if (!seedOf.emplace(blk.cellIndex(rc), static_cast<std::int32_t>(s)).second)
      rep.fail("seg.seed", "seed " + std::to_string(s) + " at " + coordStr(rc) +
                               " duplicates an earlier seed");
  }
  const auto crit = g.criticalCounts();
  if (static_cast<std::int64_t>(seg.seeds.size()) != crit[seed_dim])
    rep.fail("seg.seedcount",
             std::to_string(seg.seeds.size()) + " seeds but " +
                 std::to_string(crit[seed_dim]) + " critical " +
                 std::to_string(seed_dim) + "-cells");
  if (!rep.ok()) return rep;  // label checks below assume sound seeds

  // --- Labels: one per element, each equal to the region of the
  // critical cell the element's V-path terminates at (recomputed by
  // an independent walk; a step budget turns a cyclic walk into a
  // reported violation instead of a hang).
  const std::int64_t budget = blk.numCells() + 1;
  if (kind == SegmentationKind::kMinima) {
    if (static_cast<std::int64_t>(seg.labels.size()) != blk.numVertices()) {
      rep.fail("seg.size", std::to_string(seg.labels.size()) + " labels for " +
                               std::to_string(blk.numVertices()) + " vertices");
      return rep;
    }
    for (std::int64_t vz = 0; vz < blk.vdims.z; ++vz)
      for (std::int64_t vy = 0; vy < blk.vdims.y; ++vy)
        for (std::int64_t vx = 0; vx < blk.vdims.x; ++vx) {
          ++rep.checked;
          Vec3i vc{vx, vy, vz};
          std::int32_t want = analysis::kUnlabelled;
          for (std::int64_t step = 0; step < budget; ++step) {
            const Vec3i rc = vc * 2;
            if (g.isCritical(rc)) {
              want = seedOf.at(blk.cellIndex(rc));
              break;
            }
            const Vec3i edge = g.partner(rc);
            const Vec3i other = edge + (edge - rc);
            vc = {other.x / 2, other.y / 2, other.z / 2};
          }
          const Vec3i start{vx, vy, vz};
          if (want == analysis::kUnlabelled) {
            rep.fail("seg.flow", "descent from vertex " + coordStr(start) +
                                     " does not terminate");
            continue;
          }
          const std::int32_t got =
              seg.labels[static_cast<std::size_t>(blk.vertexIndex(start))];
          if (got != want)
            rep.fail("seg.label", "vertex " + coordStr(start) + " labelled " +
                                      std::to_string(got) + ", flow reaches region " +
                                      std::to_string(want));
        }
    return rep;
  }

  const Vec3i nvox{blk.vdims.x - 1, blk.vdims.y - 1, blk.vdims.z - 1};
  const std::int64_t total = std::max<std::int64_t>(nvox.volume(), 0);
  if (static_cast<std::int64_t>(seg.labels.size()) != total) {
    rep.fail("seg.size", std::to_string(seg.labels.size()) + " labels for " +
                             std::to_string(total) + " voxels");
    return rep;
  }
  if (total == 0) return rep;
  for (std::int64_t z = 0; z < nvox.z; ++z)
    for (std::int64_t y = 0; y < nvox.y; ++y)
      for (std::int64_t x = 0; x < nvox.x; ++x) {
        ++rep.checked;
        Vec3i vox{x, y, z};
        // kUnlabelled = the ascent exits through the domain boundary
        // (orphan chains belong to lower-dimensional manifolds).
        std::int32_t want = analysis::kUnlabelled;
        bool terminated = false;
        for (std::int64_t step = 0; step < budget; ++step) {
          const Vec3i rc{2 * vox.x + 1, 2 * vox.y + 1, 2 * vox.z + 1};
          if (g.isCritical(rc)) {
            want = seedOf.at(blk.cellIndex(rc));
            terminated = true;
            break;
          }
          const Vec3i quad = g.partner(rc);
          const Vec3i other = quad + (quad - rc);
          int axis = 0;
          for (int a = 1; a < 3; ++a)
            if (quad[a] != rc[a]) axis = a;
          if (other[axis] < 0 || other[axis] >= r[axis]) {
            terminated = true;  // orphan
            break;
          }
          vox = {(other.x - 1) / 2, (other.y - 1) / 2, (other.z - 1) / 2};
        }
        const Vec3i start{x, y, z};
        if (!terminated) {
          rep.fail("seg.flow", "ascent from voxel " + coordStr(start) +
                                   " does not terminate");
          continue;
        }
        const std::int32_t got =
            seg.labels[static_cast<std::size_t>(x + y * nvox.x + z * nvox.x * nvox.y)];
        if (got != want)
          rep.fail("seg.label", "voxel " + coordStr(start) + " labelled " +
                                    std::to_string(got) + ", flow reaches " +
                                    (want == analysis::kUnlabelled
                                         ? std::string("no maximum")
                                         : "region " + std::to_string(want)));
      }
  return rep;
}

}  // namespace msc::check
