#include "integrity/integrity.hpp"

#include <string>

namespace msc::integrity {

std::uint64_t checksum64(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0x243F6A8885A308D3ull;  // pi fraction, arbitrary non-zero
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t lane = 0;
    std::memcpy(&lane, p + i, 8);
    h = mix64(h ^ lane);
  }
  std::uint64_t tail = 0;
  for (std::size_t k = 0; i + k < n; ++k)
    tail |= static_cast<std::uint64_t>(p[i + k]) << (8 * k);
  // Length tag: distinguishes trailing-zero tails and empty buffers.
  h = mix64(h ^ tail);
  return mix64(h ^ static_cast<std::uint64_t>(n));
}

std::vector<std::byte> wrapContainer(const std::byte* data, std::size_t n) {
  std::vector<std::byte> out(kContainerHeaderBytes + n);
  std::byte* p = out.data();
  const std::uint64_t len = n;
  const std::uint64_t sum = checksum64(data, n);
  std::memcpy(p, &kContainerMagic, 4);
  std::memcpy(p + 4, &kContainerVersion, 4);
  std::memcpy(p + 8, &len, 8);
  std::memcpy(p + 16, &sum, 8);
  if (n) std::memcpy(p + kContainerHeaderBytes, data, n);
  return out;
}

namespace {

const char* containerProblem(const std::byte* data, std::size_t n) {
  if (n < kContainerHeaderBytes) return "truncated header";
  std::uint32_t magic = 0, version = 0;
  std::uint64_t len = 0, sum = 0;
  std::memcpy(&magic, data, 4);
  std::memcpy(&version, data + 4, 4);
  std::memcpy(&len, data + 8, 8);
  std::memcpy(&sum, data + 16, 8);
  if (magic != kContainerMagic) return "bad magic";
  if (version != kContainerVersion) return "bad version";
  if (len != n - kContainerHeaderBytes) return "length mismatch (torn write?)";
  if (checksum64(data + kContainerHeaderBytes, len) != sum)
    return "checksum mismatch";
  return nullptr;
}

}  // namespace

std::vector<std::byte> unwrapContainer(const std::byte* data, std::size_t n,
                                       const char* what) {
  if (const char* why = containerProblem(data, n))
    throw IntegrityError(std::string(what) + ": " + why);
  return std::vector<std::byte>(data + kContainerHeaderBytes, data + n);
}

bool containerLooksValid(const std::byte* data, std::size_t n) {
  return containerProblem(data, n) == nullptr;
}

Monitor::Monitor(int nranks)
    : nranks_(nranks), slots_(static_cast<std::size_t>(nranks > 0 ? nranks : 1)) {}

void Monitor::noteVerified(int rank) {
  slots_[static_cast<std::size_t>(rank)].verified.fetch_add(
      1, std::memory_order_relaxed);
}

void Monitor::noteFailed(int rank) {
  slots_[static_cast<std::size_t>(rank)].failed.fetch_add(
      1, std::memory_order_relaxed);
}

void Monitor::noteHealed(int) { healed_.fetch_add(1, std::memory_order_relaxed); }

std::int64_t Monitor::verified(int rank) const {
  return slots_[static_cast<std::size_t>(rank)].verified.load(
      std::memory_order_relaxed);
}

std::int64_t Monitor::failed(int rank) const {
  return slots_[static_cast<std::size_t>(rank)].failed.load(
      std::memory_order_relaxed);
}

std::int64_t Monitor::verifiedTotal() const {
  std::int64_t t = 0;
  for (const RankSlot& s : slots_) t += s.verified.load(std::memory_order_relaxed);
  return t;
}

std::int64_t Monitor::failedTotal() const {
  std::int64_t t = 0;
  for (const RankSlot& s : slots_) t += s.failed.load(std::memory_order_relaxed);
  return t;
}

std::int64_t Monitor::healedTotal() const {
  return healed_.load(std::memory_order_relaxed);
}

void flipOneBit(std::byte* data, std::size_t n, std::uint64_t salt) {
  if (n == 0) return;
  const std::uint64_t h = mix64(salt ^ 0x5DEECE66Dull);
  const std::size_t byte_i = static_cast<std::size_t>(h % n);
  const int bit_i = static_cast<int>((h >> 32) % 8);
  data[byte_i] ^= static_cast<std::byte>(1u << bit_i);
}

}  // namespace msc::integrity
