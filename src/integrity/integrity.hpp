/// \file integrity.hpp
/// End-to-end silent-data-corruption detection: checksummed framing
/// for wire messages and stored bytes, plus the monitor that tallies
/// what was verified, caught and healed.
///
/// Three layers compose here:
///
///  * Wire trailer — a fixed 16-byte tail appended to every
///    par::Comm data frame when a Monitor is attached. It is the
///    *outermost* trailer (appended after the audit and causal
///    trailers), so its checksum covers the user payload and all
///    inner protocol metadata; a flip anywhere in the frame is
///    caught before any other layer parses the bytes.
///  * Container wrap — a 24-byte header prepended to bytes at rest
///    (CheckpointStore entries, disk spills). Unlike the wire
///    trailer, unwrap *throws* IntegrityError: at-rest corruption
///    has no sender to re-request from, so the caller must decide
///    between healing (re-fetch, recompute) and failing.
///  * Monitor — per-rank padded tallies (verified / failed /
///    healed), mirroring fault::Injector's fired() discipline so
///    chaos reports can prove every detector actually fired.
///
/// The checksum is splitmix64 chained over 8-byte lanes (the same
/// generator synth/fields.cpp uses for reproducible noise): fast,
/// dependency-free, and a single flipped bit anywhere avalanches
/// through every subsequent lane.
///
/// Leaf header: no internal dependencies beyond core/annotations.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/annotations.hpp"

namespace msc::integrity {

/// Thrown when corruption is detected and no healing path remains.
/// Structured so callers (and tests) can distinguish an integrity
/// failure from other runtime errors: never a hang, never silence.
class IntegrityError : public std::runtime_error {
 public:
  explicit IntegrityError(const std::string& what)
      : std::runtime_error("integrity: " + what) {}
};

/// splitmix64 finalizer — one round of the generator.
inline std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Checksum `n` bytes: splitmix chained over full 8-byte lanes, then
/// a length-tagged final round over the (zero-padded) tail lane. The
/// length tag means two buffers that differ only by trailing zero
/// bytes hash differently.
std::uint64_t checksum64(const void* data, std::size_t n);

// ---------------------------------------------------------------------------
// Wire trailer (tail, outermost on the frame)

/// [u64 checksum-of-everything-before][u8 version][6 reserved][u8 magic]
inline constexpr std::size_t kWireTrailerBytes = 16;
/// Distinct from audit (0xA5) and causal (0x5C) magics so a mislayered
/// strip is caught immediately.
inline constexpr std::uint8_t kWireMagic = 0x17;
inline constexpr std::uint8_t kWireVersion = 1;

/// Append the integrity trailer to `b`: checksum covers every byte
/// currently in `b` (payload + any inner trailers).
template <class ByteVec>
void appendTrailer(ByteVec& b) {
  const std::uint64_t sum = checksum64(b.data(), b.size());
  const std::size_t base = b.size();
  b.resize(base + kWireTrailerBytes);
  std::byte* p = b.data() + base;
  std::memcpy(p, &sum, 8);
  p[8] = static_cast<std::byte>(kWireVersion);
  // bytes 9..14 reserved (zeroed by resize's value-init)
  p[15] = static_cast<std::byte>(kWireMagic);
}

/// Verify and strip the integrity trailer from `b`. Returns false on
/// ANY anomaly — short frame, wrong magic, wrong version, checksum
/// mismatch — leaving `b` untouched so the caller can drop the frame
/// and decide between re-request and IntegrityError. Deliberately
/// does not throw: a corrupt frame on the wire is an expected event
/// under fault injection, not a programming error.
template <class ByteVec>
bool verifyAndStripTrailer(ByteVec& b) {
  if (b.size() < kWireTrailerBytes) return false;
  const std::byte* p = b.data() + (b.size() - kWireTrailerBytes);
  if (p[15] != static_cast<std::byte>(kWireMagic)) return false;
  if (p[8] != static_cast<std::byte>(kWireVersion)) return false;
  std::uint64_t stored = 0;
  std::memcpy(&stored, p, 8);
  const std::size_t body = b.size() - kWireTrailerBytes;
  if (checksum64(b.data(), body) != stored) return false;
  b.resize(body);
  return true;
}

// ---------------------------------------------------------------------------
// Container wrap (header, bytes at rest)

/// [u32 magic "ISUM"][u32 version][u64 payload_len][u64 checksum][payload]
inline constexpr std::uint32_t kContainerMagic = 0x4D555349u;  // "ISUM"
inline constexpr std::uint32_t kContainerVersion = 1;
inline constexpr std::size_t kContainerHeaderBytes = 24;

/// Wrap `payload` in a checksummed container (for storage).
std::vector<std::byte> wrapContainer(const std::byte* data, std::size_t n);

/// Unwrap a checksummed container. Throws IntegrityError on a short
/// buffer, bad magic/version, length mismatch (torn write) or
/// checksum mismatch (flip). `what` names the entry for the message.
std::vector<std::byte> unwrapContainer(const std::byte* data, std::size_t n,
                                       const char* what);

/// Non-throwing probe: true iff `unwrapContainer` would succeed.
bool containerLooksValid(const std::byte* data, std::size_t n);

// ---------------------------------------------------------------------------
// Monitor

/// Per-run integrity tallies. Thread-safe: per-rank padded slots for
/// the hot verified counter; failures and heals are rare and go to
/// shared atomics. Attached non-owning (the Tracer/Auditor pattern):
/// a null Monitor means checksummed framing is off and the fast path
/// has exactly one branch per op.
class Monitor {
 public:
  explicit Monitor(int nranks);

  int nranks() const { return nranks_; }

  void noteVerified(int rank);
  /// A detector fired: a frame or entry failed its checksum.
  void noteFailed(int rank);
  /// A detected corruption was repaired (re-request satisfied,
  /// re-fetch from disk, block recompute).
  void noteHealed(int rank);

  std::int64_t verified(int rank) const;
  std::int64_t failed(int rank) const;
  std::int64_t verifiedTotal() const;
  std::int64_t failedTotal() const;
  std::int64_t healedTotal() const;

 private:
  struct alignas(64) RankSlot {
    std::atomic<std::int64_t> verified MSC_RELAXED_TALLY{0};
    std::atomic<std::int64_t> failed MSC_RELAXED_TALLY{0};
  };

  int nranks_;
  std::vector<RankSlot> slots_;
  std::atomic<std::int64_t> healed_ MSC_RELAXED_TALLY{0};
};

/// Flip one bit of `b` in place, position chosen deterministically
/// from `salt` (used by the corruption fault kinds; exposed so tests
/// can reproduce the exact perturbation). No-op on an empty buffer.
void flipOneBit(std::byte* data, std::size_t n, std::uint64_t salt);

}  // namespace msc::integrity
