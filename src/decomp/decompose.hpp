/// \file decompose.hpp
/// Domain decomposition (section IV-A): a bisection algorithm that
/// iteratively divides the longest remaining data dimension in half
/// until the desired number of blocks is reached. Neighbouring blocks
/// share one layer of vertex values. Blocks are numbered in
/// bisection-tree leaf order, so that any aligned group of 2^k
/// consecutive block ids covers a contiguous box — the property the
/// radix merge rounds rely on for exact boundary resolution.
#pragma once

#include <vector>

#include "core/grid.hpp"

namespace msc {

/// Split the domain into `nblocks` blocks. `nblocks` must be >= 1;
/// powers of two reproduce the paper's setup exactly, other counts
/// use an uneven bisection (floor/ceil split of the block count).
std::vector<Block> decompose(const Domain& domain, int nblocks);

/// Round-robin (block-cyclic) assignment of blocks to ranks
/// (section IV-A). Returns, for each rank, the list of block ids.
std::vector<std::vector<int>> assignBlocks(int nblocks, int nranks);

}  // namespace msc
