#include "decomp/decompose.hpp"

#include <algorithm>
#include <stdexcept>

namespace msc {

namespace {

/// Recursive bisection over a vertex range [off, off+dims) per axis.
/// Children share the split plane's vertex layer.
void bisect(const Domain& domain, Vec3i off, Vec3i dims, int nblocks,
            std::vector<Block>& out) {
  if (nblocks == 1) {
    Block b;
    b.id = static_cast<int>(out.size());
    b.domain = domain;
    b.vdims = dims;
    b.voffset = off;
    for (int a = 0; a < 3; ++a) {
      b.shared_lo[a] = off[a] > 0;
      b.shared_hi[a] = off[a] + dims[a] < domain.vdims[a];
    }
    out.push_back(b);
    return;
  }
  // Longest remaining dimension; ties broken toward x for determinism.
  int axis = 0;
  for (int a = 1; a < 3; ++a)
    if (dims[a] > dims[axis]) axis = a;
  if (dims[axis] < 3)
    throw std::invalid_argument("decompose: block too small to bisect (needs >= 3 vertices)");

  // Split the vertex range at the plane proportional to the child
  // block counts (exactly half for power-of-two totals); both halves
  // keep the split plane (one shared layer).
  const int nleft_w = nblocks / 2;
  std::int64_t h = dims[axis] * nleft_w / nblocks;
  h = std::max<std::int64_t>(1, std::min<std::int64_t>(h, dims[axis] - 2));
  Vec3i ldims = dims, rdims = dims, roff = off;
  ldims[axis] = h + 1;
  rdims[axis] = dims[axis] - h;
  roff[axis] = off[axis] + h;

  bisect(domain, off, ldims, nleft_w, out);
  bisect(domain, roff, rdims, nblocks - nleft_w, out);
}

}  // namespace

std::vector<Block> decompose(const Domain& domain, int nblocks) {
  if (nblocks < 1) throw std::invalid_argument("decompose: nblocks must be >= 1");
  std::vector<Block> out;
  out.reserve(static_cast<std::size_t>(nblocks));
  bisect(domain, {0, 0, 0}, domain.vdims, nblocks, out);
  return out;
}

std::vector<std::vector<int>> assignBlocks(int nblocks, int nranks) {
  std::vector<std::vector<int>> byRank(static_cast<std::size_t>(nranks));
  for (int b = 0; b < nblocks; ++b)
    byRank[static_cast<std::size_t>(b % nranks)].push_back(b);
  return byRank;
}

}  // namespace msc
