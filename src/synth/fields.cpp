#include "synth/fields.hpp"

#include <cmath>

namespace msc::synth {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// SplitMix64: deterministic, platform-independent hashing for the
/// pseudo-random generators.
std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double hash01(std::uint64_t a, std::uint64_t b) {
  return static_cast<double>(splitmix(splitmix(a) ^ b) >> 11) * 0x1p-53;
}

/// Normalized coordinate in [0,1] along one axis.
double norm(std::int64_t v, std::int64_t n) { return n > 1 ? double(v) / double(n - 1) : 0.0; }

}  // namespace

Field sinusoid(const Domain& domain, int complexity) {
  const Vec3i d = domain.vdims;
  const double c = complexity;
  // Deliberately untilted: breaking the sine product's symmetries
  // with a linear tilt skews the discrete pairings and causes severe
  // V-path braiding (hundreds of distinct paths between the same
  // saddle pair). The symmetric product's exact ties resolve into a
  // locally consistent matching under simulation of simplicity and
  // keep path multiplicities small.
  return [d, c](Vec3i v) {
    const double x = norm(v.x, d.x), y = norm(v.y, d.y), z = norm(v.z, d.z);
    return static_cast<float>(std::sin(c * kPi * x) * std::sin(c * kPi * y) *
                              std::sin(c * kPi * z));
  };
}

Field hydrogenLike(const Domain& domain) {
  const Vec3i d = domain.vdims;
  return [d](Vec3i p) {
    // Centered coordinates in [-1,1].
    const double u = 2 * norm(p.x, d.x) - 1;
    const double v = 2 * norm(p.y, d.y) - 1;
    const double w = 2 * norm(p.z, d.z) - 1;
    // Three lobes along the x axis.
    const double s2 = 0.018;  // lobe variance
    double f = std::exp(-((u + 0.55) * (u + 0.55) + v * v + w * w) / s2);
    f += 1.2 * std::exp(-(u * u + v * v + w * w) / s2);
    f += std::exp(-((u - 0.55) * (u - 0.55) + v * v + w * w) / s2);
    // Toroidal ring around the x axis.
    const double rho = std::sqrt(v * v + w * w);
    f += 0.8 * std::exp(-((rho - 0.45) * (rho - 0.45) + u * u) / 0.012);
    // Byte quantisation (the paper's dataset is byte-valued); the
    // flat exterior becomes an exact plateau at zero.
    return static_cast<float>(std::floor(std::min(f, 1.0) * 255.0));
  };
}

Field jetLike(const Domain& domain, unsigned seed) {
  const Vec3i d = domain.vdims;
  // Deterministic multi-octave direction/phase table.
  struct Mode {
    double kx, ky, kz, phase, amp;
  };
  std::vector<Mode> modes;
  for (int o = 0; o < 4; ++o) {
    for (int m = 0; m < 6; ++m) {
      const std::uint64_t id = static_cast<std::uint64_t>(seed) * 1000 +
                               static_cast<std::uint64_t>(o) * 16 +
                               static_cast<std::uint64_t>(m);
      const double base = 4.0 * (1 << o);
      modes.push_back({base * (0.5 + hash01(id, 1)), base * (0.5 + hash01(id, 2)),
                       base * (0.5 + hash01(id, 3)), 2 * kPi * hash01(id, 4),
                       0.55 / (1 << o)});
    }
  }
  return [d, modes](Vec3i p) {
    const double x = norm(p.x, d.x);
    const double v = 2 * norm(p.y, d.y) - 1;
    const double w = 2 * norm(p.z, d.z) - 1;
    // Jet core widening downstream (x is the streamwise axis).
    const double width = 0.18 + 0.5 * x;
    const double r2 = (v * v + w * w) / (width * width);
    const double envelope = std::exp(-r2);
    double turb = 0;
    for (const Mode& m : modes)
      turb += m.amp * std::sin(m.kx * kPi * x + m.ky * kPi * v + m.kz * kPi * w + m.phase);
    // Mixture-fraction-like: high in the core, turbulent in the shear
    // layer, near zero in the coflow.
    const double shear = std::exp(-(r2 - 1) * (r2 - 1) * 2.0);
    return static_cast<float>(envelope + 0.35 * shear * turb);
  };
}

Field rtLike(const Domain& domain, unsigned seed) {
  const Vec3i d = domain.vdims;
  struct Mode {
    double kx, ky, px, py, amp;
  };
  std::vector<Mode> interface_modes;
  for (int m = 0; m < 12; ++m) {
    const std::uint64_t id = static_cast<std::uint64_t>(seed) * 2000 +
                             static_cast<std::uint64_t>(m);
    const double k = 2.0 + 2.0 * m;
    interface_modes.push_back({k, k * (0.7 + 0.6 * hash01(id, 1)), 2 * kPi * hash01(id, 2),
                               2 * kPi * hash01(id, 3), 0.5 / (1.0 + 0.35 * m)});
  }
  struct Blob {
    double x, y, z, s, a;
  };
  std::vector<Blob> plumes;
  for (int b = 0; b < 24; ++b) {
    const std::uint64_t id = static_cast<std::uint64_t>(seed) * 3000 +
                             static_cast<std::uint64_t>(b);
    const bool bubble = (b % 2) == 0;  // light fluid rising vs heavy falling
    plumes.push_back({hash01(id, 1), hash01(id, 2),
                      bubble ? 0.55 + 0.35 * hash01(id, 3) : 0.10 + 0.35 * hash01(id, 3),
                      0.03 + 0.05 * hash01(id, 4), bubble ? -0.55 : 0.55});
  }
  return [d, interface_modes, plumes](Vec3i p) {
    const double x = norm(p.x, d.x), y = norm(p.y, d.y), z = norm(p.z, d.z);
    double eta = 0;
    for (const Mode& m : interface_modes)
      eta += m.amp * std::sin(m.kx * kPi * x + m.px) * std::sin(m.ky * kPi * y + m.py);
    // Heavy fluid on top: density increases with height, sharpened at
    // the perturbed interface.
    const double iface = z - 0.5 - 0.06 * eta;
    double rho = 1.0 + 1.0 / (1.0 + std::exp(-iface * 18.0));
    for (const Blob& bl : plumes) {
      const double dx = x - bl.x, dy = y - bl.y, dz = z - bl.z;
      rho += bl.a * std::exp(-(dx * dx + dy * dy + dz * dz) / (bl.s * bl.s));
    }
    return static_cast<float>(rho);
  };
}

Field noise(unsigned seed) {
  return [seed](Vec3i p) {
    const std::uint64_t id = (static_cast<std::uint64_t>(p.x) << 42) ^
                             (static_cast<std::uint64_t>(p.y) << 21) ^
                             static_cast<std::uint64_t>(p.z);
    return static_cast<float>(hash01(id, seed));
  };
}

Field ramp() {
  return [](Vec3i p) { return static_cast<float>(p.x + 2 * p.y + 4 * p.z); };
}

Field cosineProduct(const Domain& domain, int k) {
  const Vec3i d = domain.vdims;
  // Small distinct per-axis tilts break the mirror and permutation
  // symmetries of the cosine sum; without them, the many exact value
  // ties produce clouds of zero-persistence critical pairs (valid,
  // but useless as a closed-form oracle).
  return [d, k](Vec3i p) {
    const double x = norm(p.x, d.x), y = norm(p.y, d.y), z = norm(p.z, d.z);
    return static_cast<float>(std::cos(2 * kPi * k * x) + std::cos(2 * kPi * k * y) +
                              std::cos(2 * kPi * k * z) + 1e-3 * x + 1.31e-3 * y +
                              1.73e-3 * z);
  };
}

Field plateaus(unsigned seed, int levels) {
  const Field base = noise(seed);
  const double n = std::max(levels, 2);
  return [base, n](Vec3i p) { return static_cast<float>(std::floor(base(p) * n)); };
}

Field nearTies(unsigned seed) {
  const Field coarse = noise(seed);
  const Field fine = noise(seed ^ 0x9E3779B9u);
  return [coarse, fine](Vec3i p) {
    const double level = std::floor(coarse(p) * 5.0);
    return static_cast<float>(level + 1e-5 * fine(p));
  };
}

Field thinSaddles(const Domain& domain, unsigned seed) {
  const Vec3i d = domain.vdims;
  // Axis-aligned lines through random points: line m runs along axis
  // `axis` at fixed normalized coordinates (c1, c2) in the other two.
  struct Line {
    int axis;
    double c1, c2;
  };
  std::vector<Line> lines;
  for (int m = 0; m < 9; ++m) {
    const std::uint64_t id = static_cast<std::uint64_t>(seed) * 4000 +
                             static_cast<std::uint64_t>(m);
    lines.push_back({m % 3, hash01(id, 1), hash01(id, 2)});
  }
  const Field tiebreak = noise(seed ^ 0x7F4A7C15u);
  return [d, lines, tiebreak](Vec3i p) {
    const double c[3] = {norm(p.x, d.x), norm(p.y, d.y), norm(p.z, d.z)};
    double f = 0;
    for (const Line& ln : lines) {
      const double u = c[(ln.axis + 1) % 3] - ln.c1;
      const double v = c[(ln.axis + 2) % 3] - ln.c2;
      // Narrow ridge: width ~2 vertices on a 16^3 grid.
      f = std::max(f, std::exp(-(u * u + v * v) / 0.012));
    }
    return static_cast<float>(f + 1e-4 * tiebreak(p));
  };
}

BlockField sample(const Block& block, const Field& f) { return sampleBlock(block, f); }

std::vector<float> sampleAll(const Domain& domain, const Field& f) {
  std::vector<float> out(static_cast<std::size_t>(domain.vdims.volume()));
  std::size_t i = 0;
  for (std::int64_t z = 0; z < domain.vdims.z; ++z)
    for (std::int64_t y = 0; y < domain.vdims.y; ++y)
      for (std::int64_t x = 0; x < domain.vdims.x; ++x) out[i++] = f({x, y, z});
  return out;
}

}  // namespace msc::synth
