/// \file fields.hpp
/// Synthetic scalar fields used by the studies and examples.
///
/// Every generator is a deterministic analytic function of the
/// *global* vertex coordinate, so blocks sampled independently are
/// bit-identical to a serial sampling — the property the stability
/// and merging tests rely on. See DESIGN.md, "Substitutions", for
/// how these stand in for the paper's datasets.
#pragma once

#include <functional>

#include "core/field.hpp"

namespace msc::synth {

/// An analytic field: evaluated at global vertex coordinates.
using Field = std::function<float(Vec3i)>;

/// Sinusoidal size/complexity family of section VI-B: `complexity` is
/// the number of +-1 extrema of the sine along one side of the cube.
Field sinusoid(const Domain& domain, int complexity);

/// Hydrogen-atom-like probability density (the Fig. 4 stability
/// study): three lobes in a line plus a torus, in a flat (zero)
/// exterior. Values are quantised to byte resolution like the
/// paper's dataset, producing the plateau instabilities section V-A
/// discusses.
Field hydrogenLike(const Domain& domain);

/// Turbulent-jet-like mixture fraction analogue (the Fig. 9 strong
/// scaling study): shear-layer envelope + multi-octave turbulence;
/// minima-dominated feature population.
Field jetLike(const Domain& domain, unsigned seed = 7);

/// Rayleigh-Taylor-like mixing density analogue (the Fig. 10 study):
/// vertical density ramp + perturbed interface + rising/falling
/// plumes.
Field rtLike(const Domain& domain, unsigned seed = 11);

/// Deterministic white noise in [0,1) (worst-case feature density).
Field noise(unsigned seed = 1);

/// Monotone ramp with a single minimum and maximum (best case).
Field ramp();

/// Separable product of cosines with `k` periods per side: its MS
/// complex is known in closed form (used by unit tests).
Field cosineProduct(const Domain& domain, int k);

// --- Adversarial generators (fuzzing). Degenerate value patterns
// that stress the simulation-of-simplicity ordering, the plateau
// handling, and the boundary pairing restriction.

/// Large exact plateaus: white noise quantised to `levels` distinct
/// values, so most of the domain is flat and every flat region's
/// critical cells are chosen purely by the vertex-id tiebreak.
Field plateaus(unsigned seed, int levels = 4);

/// Near-ties: a few widely separated base levels, each perturbed by
/// an epsilon several orders of magnitude smaller than the gaps —
/// values are distinct but comparisons are dominated by noise bits.
Field nearTies(unsigned seed);

/// Thin saddles: narrow knife-edge ridges along random axis-aligned
/// lines; where ridges approach each other they form elongated
/// near-degenerate saddle corridors. A tiny noise term breaks exact
/// ties.
Field thinSaddles(const Domain& domain, unsigned seed);

/// Sample a generator over one block.
BlockField sample(const Block& block, const Field& f);

/// Sample a generator over the full domain (serial baseline).
std::vector<float> sampleAll(const Domain& domain, const Field& f);

}  // namespace msc::synth
