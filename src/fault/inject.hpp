/// \file inject.hpp
/// Seeded, deterministic fault injection for the message-passing
/// pipeline (msc::par + the threaded driver).
///
/// The paper's runs reached 32,768 BG/P processes — a scale where
/// rank loss, stragglers and flaky links are routine. An Injector is
/// attached to the pipeline through PipelineConfig::fault (same
/// non-owning-pointer pattern as obs::Tracer and audit::Auditor) and
/// decides, as a pure function of (seed, rank, op-index), whether a
/// communication operation of the threaded driver's merge rounds is
/// perturbed:
///
///  * kCrash     — the rank dies: par::RankFailure is thrown at the
///                 op, unwinding the rank's function. With recovery
///                 enabled the runtime respawns it from the last
///                 checkpoint (see fault/recovery.hpp).
///  * kDelay     — the sender stalls briefly *before* depositing the
///                 message. Modelling delay as sender-side latency
///                 keeps the runtime's ordering guarantees intact:
///                 per-(src, tag) FIFO still holds, and a message is
///                 always delivered before its sender's next
///                 synchronisation point.
///  * kDuplicate — the message is delivered twice (send ops only;
///                 on a receive op the slot degrades to kDelay).
///                 Receivers of the recovery protocol deduplicate by
///                 (dest block, sender block).
///  * kStall     — the rank pauses at the op (a straggler), long
///                 enough to shuffle arrival orders but bounded well
///                 below the receive deadline.
///
/// Silent-data-corruption kinds (default rate 0, so existing
/// schedules are bit-identical unless a rate is raised):
///
///  * kCorruptPayload    — one bit of the outgoing frame flips in
///                         transit (send ops only; a receive slot
///                         degrades to kDelay, like kDuplicate). The
///                         flip happens AFTER the integrity trailer
///                         is appended, so a checksummed run detects
///                         it and an unchecked run silently delivers
///                         garbage — exactly the SDC threat model.
///  * kCorruptCheckpoint — one bit of the in-memory checkpoint entry
///                         flips after storage (a DRAM flip). The
///                         disk spill stays good, so a checksummed
///                         restore detects the flip and heals from
///                         disk.
///  * kTruncateSpill     — the disk spill is torn (truncated write);
///                         the in-memory copy stays intact. A fresh
///                         store restoring from disk must detect the
///                         tear instead of returning short bytes.
///
/// The corruption kinds fire on their own op class (kCheckpoint for
/// the two storage kinds) and degrade to kNone elsewhere, keeping
/// every schedule a pure function of (seed, rank, op-index, class).
///
/// Determinism contract: the decision for the N-th injected op of a
/// rank depends only on (seed, rank, N) plus the deterministic
/// per-rank crash cap — never on timing, scheduling, or other ranks.
/// (Which ops *execute* can vary with timing once faults fire; the
/// schedule itself cannot.)
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/annotations.hpp"

namespace msc::obs {
class Tracer;
}

namespace msc::fault {

enum class FaultKind : int {
  kNone = 0,
  kCrash,
  kDelay,
  kDuplicate,
  kStall,
  kCorruptPayload,
  kCorruptCheckpoint,
  kTruncateSpill,
};
inline constexpr int kNumFaultKinds = 8;

const char* faultKindName(FaultKind k);
/// Parse a kind name ("crash", "corrupt_payload", ...) back to the
/// enum; returns kNone for an unknown name. Used by msc_chaos --kinds=.
FaultKind faultKindFromName(const char* name);

/// Which operation a fault point guards: a message send, a message
/// receive, or a checkpoint store (the storage-corruption kinds).
enum class OpClass { kSend, kRecv, kCheckpoint };

struct InjectorOptions {
  std::uint64_t seed = 0;
  /// Per-op firing probabilities (evaluated in this order; they
  /// partition [0, 1), so their sum must be <= 1).
  double crash_rate = 0.02;
  double delay_rate = 0.04;
  double duplicate_rate = 0.03;
  double stall_rate = 0.02;
  /// Silent-data-corruption kinds, off by default so every schedule
  /// shipped before they existed is preserved bit-for-bit.
  double corrupt_payload_rate = 0.0;
  double corrupt_checkpoint_rate = 0.0;
  double truncate_spill_rate = 0.0;
  /// Hard cap so every run terminates: once a rank has crashed this
  /// many times, further kCrash slots degrade to kNone. The cap is
  /// per-rank (not global) to keep the schedule a pure function of
  /// (seed, rank, op-index).
  int max_crashes_per_rank = 2;
  /// Sleep lengths for the latency faults, kept well below any
  /// receive deadline so they perturb order, not liveness.
  double delay_ms = 1.0;
  double stall_ms = 5.0;
};

/// One parallel execution's fault schedule. Thread-safe: each rank
/// only touches its own op counter; the fired() totals are atomics.
class Injector {
 public:
  Injector(int nranks, InjectorOptions opts);

  int nranks() const { return nranks_; }
  const InjectorOptions& options() const { return opts_; }

  /// Decide the fault for the calling rank's next communication op
  /// (advances the rank's op counter). `cls` distinguishes send ops
  /// (which may duplicate) from receive ops (which cannot).
  FaultKind next(int rank, OpClass cls);

  /// Pure decision function: what `next` would return for op `op` of
  /// `rank`, ignoring the crash cap. Exposed so tests can verify the
  /// schedule is a function of (seed, rank, op-index).
  FaultKind decide(int rank, std::uint64_t op, OpClass cls) const;

  /// Death notice: true once `rank` has crashed at least once.
  bool everCrashed(int rank) const;
  /// Crashes fired so far on `rank`.
  int crashCount(int rank) const;
  /// Ops seen so far on `rank`.
  std::uint64_t opCount(int rank) const;
  /// Total faults fired of kind `k`, across all ranks.
  std::int64_t fired(FaultKind k) const;
  /// Total faults fired of any kind.
  std::int64_t firedTotal() const;

 private:
  struct alignas(64) RankSlot {
    std::atomic<std::uint64_t> ops MSC_RELAXED_TALLY{0};
    std::atomic<int> crashes MSC_RELAXED_TALLY{0};
  };

  InjectorOptions opts_;
  int nranks_;
  std::vector<RankSlot> slots_;
  std::array<std::atomic<std::int64_t>, kNumFaultKinds> fired_ MSC_RELAXED_TALLY{};
};

/// Apply the injector's decision for one comm op: throws
/// par::RankFailure on kCrash (after recording the death notice),
/// sleeps through kDelay/kStall, and returns the fired kind so the
/// caller can act on the ones that need cooperation — kDuplicate
/// (send the message twice) and kCorruptPayload (arm the transit
/// corruption hook for the next frame). Null-safe: returns kNone
/// when `inj` is null. When `tr` is non-null an instant event marks
/// each fired fault on the rank's track.
FaultKind applyFault(Injector* inj, int rank, OpClass cls, obs::Tracer* tr);

}  // namespace msc::fault
