#include "fault/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace msc::fault {

CheckpointStore::CheckpointStore(std::string spill_dir) : dir_(std::move(spill_dir)) {
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
}

std::string CheckpointStore::spillPath(int round, int block) const {
  return dir_ + "/ckpt_r" + std::to_string(round) + "_b" + std::to_string(block) + ".bin";
}

void CheckpointStore::put(int round, int block, const io::Bytes& bytes) {
  const std::lock_guard lock(mu_);
  mem_[{round, block}] = bytes;
  ++stats_.puts;
  stats_.bytes_stored += static_cast<std::int64_t>(bytes.size());
  if (!dir_.empty()) {
    // Write-then-rename so a torn write never masquerades as a valid
    // checkpoint for a later restore.
    const std::string final_path = spillPath(round, block);
    const std::string tmp_path = final_path + ".tmp";
    {
      std::ofstream f(tmp_path, std::ios::binary | std::ios::trunc);
      if (!f) throw std::runtime_error("CheckpointStore: cannot write " + tmp_path);
      f.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
      if (!f) throw std::runtime_error("CheckpointStore: short write to " + tmp_path);
    }
    std::filesystem::rename(tmp_path, final_path);
    ++stats_.spilled_files;
  }
}

std::optional<io::Bytes> CheckpointStore::get(int round, int block) const {
  const std::lock_guard lock(mu_);
  const auto it = mem_.find({round, block});
  if (it != mem_.end()) {
    ++stats_.restores;
    return it->second;
  }
  if (!dir_.empty()) {
    std::ifstream f(spillPath(round, block), std::ios::binary | std::ios::ate);
    if (f) {
      const std::streamsize n = f.tellg();
      f.seekg(0);
      io::Bytes b(static_cast<std::size_t>(n));
      f.read(reinterpret_cast<char*>(b.data()), n);
      if (f) {
        ++stats_.restores;
        return b;
      }
    }
  }
  return std::nullopt;
}

bool CheckpointStore::contains(int round, int block) const {
  {
    const std::lock_guard lock(mu_);
    if (mem_.count({round, block})) return true;
  }
  return !dir_.empty() && std::filesystem::exists(spillPath(round, block));
}

void CheckpointStore::dropBelow(int round) {
  const std::lock_guard lock(mu_);
  for (auto it = mem_.begin(); it != mem_.end();)
    it = it->first.first < round ? mem_.erase(it) : std::next(it);
}

CheckpointStore::Stats CheckpointStore::stats() const {
  const std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace msc::fault
