#include "fault/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "fault/inject.hpp"
#include "integrity/integrity.hpp"

namespace msc::fault {

namespace {

/// Deterministic per-entry salt for injected flips: reproducible from
/// the key alone, so a replayed put corrupts the same bit.
std::uint64_t entrySalt(int round, int block) {
  return integrity::mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(round)) << 32) |
                          static_cast<std::uint32_t>(block));
}

}  // namespace

CheckpointStore::CheckpointStore(std::string spill_dir) : dir_(std::move(spill_dir)) {
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
}

void CheckpointStore::configureIntegrity(const IntegritySetup& setup) {
  integrity_ = setup;
}

std::string CheckpointStore::spillPath(int round, int block) const {
  return dir_ + "/ckpt_r" + std::to_string(round) + "_b" + std::to_string(block) + ".bin";
}

void CheckpointStore::put(int round, int block, const io::Bytes& bytes, int rank) {
  const std::lock_guard lock(mu_);
  io::Bytes stored = integrity_.checksums
                         ? integrity::wrapContainer(bytes.data(), bytes.size())
                         : bytes;
  ++stats_.puts;
  stats_.bytes_stored += static_cast<std::int64_t>(bytes.size());
  const FaultKind k =
      applyFault(integrity_.injector, rank, OpClass::kCheckpoint, integrity_.tracer);
  if (!dir_.empty()) {
    // Write-then-rename so a torn write never masquerades as a valid
    // checkpoint for a later restore.
    const std::string final_path = spillPath(round, block);
    const std::string tmp_path = final_path + ".tmp";
    {
      std::ofstream f(tmp_path, std::ios::binary | std::ios::trunc);
      if (!f) throw std::runtime_error("CheckpointStore: cannot write " + tmp_path);
      f.write(reinterpret_cast<const char*>(stored.data()),
              static_cast<std::streamsize>(stored.size()));
      if (!f) throw std::runtime_error("CheckpointStore: short write to " + tmp_path);
    }
    std::filesystem::rename(tmp_path, final_path);
    ++stats_.spilled_files;
    if (k == FaultKind::kTruncateSpill && !stored.empty()) {
      // Torn-write model: the rename "succeeded" but the medium lost
      // the tail. Memory keeps the good copy; only a fresh store (a
      // cross-process restart) ever notices.
      std::filesystem::resize_file(final_path, stored.size() / 2);
    }
  }
  if (k == FaultKind::kCorruptCheckpoint && !stored.empty()) {
    // DRAM-flip model: the in-memory copy rots after the (good) spill
    // was written, so get() can detect and heal from disk.
    integrity::flipOneBit(stored.data(), stored.size(), entrySalt(round, block));
  }
  mem_[{round, block}] = std::move(stored);
}

std::optional<io::Bytes> CheckpointStore::readSpill(int round, int block,
                                                    int rank) const {
  if (dir_.empty()) return std::nullopt;
  std::ifstream f(spillPath(round, block), std::ios::binary | std::ios::ate);
  if (!f) return std::nullopt;
  const std::streamsize n = f.tellg();
  f.seekg(0);
  io::Bytes b(static_cast<std::size_t>(n));
  f.read(reinterpret_cast<char*>(b.data()), n);
  if (!f) return std::nullopt;
  if (!integrity_.checksums) return b;
  if (!integrity::containerLooksValid(b.data(), b.size())) {
    // Torn or flipped on the durable medium: detected, not healable
    // from here (memory is handled by the caller).
    ++stats_.corrupt_detected;
    if (integrity_.monitor) integrity_.monitor->noteFailed(rank);
    return std::nullopt;
  }
  if (integrity_.monitor) integrity_.monitor->noteVerified(rank);
  return integrity::unwrapContainer(b.data(), b.size(), "checkpoint spill");
}

std::optional<io::Bytes> CheckpointStore::get(int round, int block, int rank) const {
  const std::lock_guard lock(mu_);
  const auto it = mem_.find({round, block});
  if (it != mem_.end()) {
    if (!integrity_.checksums) {
      ++stats_.restores;
      return it->second;
    }
    if (integrity::containerLooksValid(it->second.data(), it->second.size())) {
      if (integrity_.monitor) integrity_.monitor->noteVerified(rank);
      ++stats_.restores;
      return integrity::unwrapContainer(it->second.data(), it->second.size(),
                                        "checkpoint entry");
    }
    // The in-memory copy rotted. Heal from the spill if it validates;
    // otherwise the entry is gone -- drop it so contains() agrees.
    ++stats_.corrupt_detected;
    if (integrity_.monitor) integrity_.monitor->noteFailed(rank);
    if (auto healed = readSpill(round, block, rank)) {
      it->second = integrity::wrapContainer(healed->data(), healed->size());
      ++stats_.healed_from_disk;
      if (integrity_.monitor) integrity_.monitor->noteHealed(rank);
      ++stats_.restores;
      return healed;
    }
    mem_.erase(it);
    return std::nullopt;
  }
  if (auto spilled = readSpill(round, block, rank)) {
    ++stats_.restores;
    return spilled;
  }
  return std::nullopt;
}

bool CheckpointStore::contains(int round, int block) const {
  {
    const std::lock_guard lock(mu_);
    if (mem_.count({round, block})) return true;
  }
  return !dir_.empty() && std::filesystem::exists(spillPath(round, block));
}

void CheckpointStore::dropBelow(int round) {
  const std::lock_guard lock(mu_);
  for (auto it = mem_.begin(); it != mem_.end();)
    it = it->first.first < round ? mem_.erase(it) : std::next(it);
}

CheckpointStore::Stats CheckpointStore::stats() const {
  const std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace msc::fault
