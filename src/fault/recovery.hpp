/// \file recovery.hpp
/// Recovery protocol state shared by the rank threads of one faulty
/// pipeline execution.
///
/// The threaded driver's recovery loop (pipeline/threaded_pipeline.cpp)
/// turns every merge round into a transaction:
///
///   1. attempt: attempt-tagged sends -> deadline receives (with
///      duplicate suppression) -> glue;
///   2. vote: a gather+broadcast at rank 0 agrees on the outcome and,
///      in graceful-degradation mode, on the set of dead ranks;
///   3. drain: every rank empties its mailbox of the attempt's tag
///      (late or duplicate deliveries — all deposited before the vote
///      completed, so the drain races with nothing);
///   4. commit or roll back: on success every rank checkpoints its
///      surviving blocks for the next round; on failure every rank
///      restores its blocks from the current round's checkpoints and
///      replays with the next attempt tag.
///
/// A crashed rank (par::RankFailure) unwinds out of the rank function
/// entirely; par::Runtime::run's respawn supervisor re-invokes it and
/// the replacement reads this Coordinator to learn where the run is:
/// which (round, attempt) is in flight and which ranks are dead. In
/// kRespawn mode it restores its blocks from the last checkpoint and
/// re-executes the attempt (duplicate suppression absorbs its
/// pre-crash sends); in kDegrade mode it marks itself dead and serves
/// out the run as a spare that only votes, drains and participates in
/// the collective write, while its blocks are reassigned to surviving
/// ranks (ownerOf) that restore them from the checkpoint store.
///
/// All Coordinator state is monotone (position only advances, dead
/// ranks stay dead), so concurrent identical writes by ranks leaving
/// the same vote are harmless.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/checkpoint.hpp"

namespace msc::fault {

enum class RecoveryMode : int {
  kOff = 0,   ///< faults surface as structured errors; no recovery
  kRespawn,   ///< a crashed rank is respawned from its last checkpoint
  kDegrade,   ///< a crashed rank stays dead; its blocks move to survivors
};

const char* recoveryModeName(RecoveryMode m);

/// A recovery-protocol failure that is *not* recoverable (attempt
/// budget exhausted, missing checkpoint, no survivors left). Carries
/// the protocol position for diagnostics.
class RecoveryError : public std::runtime_error {
 public:
  RecoveryError(int rank, int round, int attempt, const std::string& what_arg)
      : std::runtime_error("fault::RecoveryError [rank " + std::to_string(rank) +
                           ", round " + std::to_string(round) + ", attempt " +
                           std::to_string(attempt) + "]: " + what_arg),
        rank_(rank), round_(round), attempt_(attempt) {}
  int rank() const { return rank_; }
  int round() const { return round_; }
  int attempt() const { return attempt_; }

 private:
  int rank_, round_, attempt_;
};

/// Deterministic block ownership under a dead-rank mask: the home
/// rank (block % nranks) while it lives, else the surviving rank at
/// the block's position in the sorted live list. Every rank computes
/// the same map from the same mask; a mask of all-false reproduces
/// the fault-free owner exactly.
int ownerOf(int block, int nranks, const std::vector<bool>& dead);

class Coordinator {
 public:
  Coordinator(int nranks, RecoveryMode mode, CheckpointStore* store);

  RecoveryMode mode() const { return mode_; }
  CheckpointStore& store() { return *store_; }
  int nranks() const { return nranks_; }

  struct Position {
    int round = 0;
    int attempt = 0;
    bool finished = false;
  };

  /// The attempt currently in flight. A respawned rank reads this to
  /// rejoin; it is exact because no peer can pass the attempt's vote
  /// without the crashed rank's contribution.
  Position position() const;
  /// Advance to (round, attempt); monotone — a stale write (from a
  /// rank leaving an earlier vote late) is ignored.
  void advanceTo(int round, int attempt);
  void setFinished();

  /// Dead-rank bookkeeping (kDegrade). markDead is idempotent.
  void markDead(int rank);
  bool isDead(int rank) const;
  std::vector<bool> deadMask() const;
  int liveCount() const;

  /// Per-rank entry counter: 0 for the first invocation of the rank
  /// function, >= 1 for a respawned replacement. Called once at entry.
  int noteEntry(int rank);
  /// Total respawns across all ranks so far.
  std::int64_t respawns() const;

  // --- Recovery accounting (for ThreadedResult/msc_chaos reporting).
  void noteReplay() { replays_.fetch_add(1, std::memory_order_relaxed); }
  void noteReassigned(int blocks) {
    reassigned_.fetch_add(blocks, std::memory_order_relaxed);
  }
  void noteDrained(int messages) {
    drained_.fetch_add(messages, std::memory_order_relaxed);
  }
  std::int64_t replays() const { return replays_.load(std::memory_order_relaxed); }
  std::int64_t reassignedBlocks() const {
    return reassigned_.load(std::memory_order_relaxed);
  }
  std::int64_t drainedMessages() const {
    return drained_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  Position pos_ MSC_GUARDED_BY(mu_);
  std::vector<bool> dead_ MSC_GUARDED_BY(mu_);
  std::vector<int> entries_ MSC_GUARDED_BY(mu_);
  RecoveryMode mode_;
  int nranks_;
  CheckpointStore* store_;  ///< non-owning; outlives the run
  std::atomic<std::int64_t> replays_ MSC_RELAXED_TALLY{0};
  std::atomic<std::int64_t> reassigned_ MSC_RELAXED_TALLY{0};
  std::atomic<std::int64_t> drained_ MSC_RELAXED_TALLY{0};
};

}  // namespace msc::fault
