#include "fault/inject.hpp"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/obs.hpp"
#include "par/comm.hpp"

namespace msc::fault {

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform in [0, 1) from the top 53 bits (exactly representable).
double unitOf(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* faultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kStall: return "stall";
    case FaultKind::kCorruptPayload: return "corrupt_payload";
    case FaultKind::kCorruptCheckpoint: return "corrupt_checkpoint";
    case FaultKind::kTruncateSpill: return "truncate_spill";
  }
  return "unknown";
}

FaultKind faultKindFromName(const char* name) {
  const std::string s(name ? name : "");
  for (int k = 1; k < kNumFaultKinds; ++k)
    if (s == faultKindName(static_cast<FaultKind>(k)))
      return static_cast<FaultKind>(k);
  return FaultKind::kNone;
}

Injector::Injector(int nranks, InjectorOptions opts)
    : opts_(opts), nranks_(nranks), slots_(static_cast<std::size_t>(nranks)) {
  assert(nranks >= 1);
  const double sum = opts.crash_rate + opts.delay_rate + opts.duplicate_rate +
                     opts.stall_rate + opts.corrupt_payload_rate +
                     opts.corrupt_checkpoint_rate + opts.truncate_spill_rate;
  if (opts.crash_rate < 0 || opts.delay_rate < 0 || opts.duplicate_rate < 0 ||
      opts.stall_rate < 0 || opts.corrupt_payload_rate < 0 ||
      opts.corrupt_checkpoint_rate < 0 || opts.truncate_spill_rate < 0 ||
      sum > 1.0)
    throw std::invalid_argument(
        "fault::Injector: rates must be non-negative and sum to <= 1 (got sum " +
        std::to_string(sum) + ")");
  if (opts.max_crashes_per_rank < 0)
    throw std::invalid_argument("fault::Injector: max_crashes_per_rank must be >= 0 (got " +
                                std::to_string(opts.max_crashes_per_rank) + ")");
  if (opts.delay_ms < 0 || opts.stall_ms < 0)
    throw std::invalid_argument("fault::Injector: delay_ms/stall_ms must be >= 0");
}

FaultKind Injector::decide(int rank, std::uint64_t op, OpClass cls) const {
  const std::uint64_t h = splitmix(
      splitmix(opts_.seed ^ 0xC2B2AE3D27D4EB4Full) ^
      (static_cast<std::uint64_t>(static_cast<unsigned>(rank)) * 0x9E3779B97F4A7C15ull) ^
      (op * 0xD6E8FEB86659FD93ull));
  const double u = unitOf(h);
  // Checkpoint ops only admit the storage-corruption kinds; a
  // crash/delay/duplicate/stall slot landing on one degrades to
  // kNone rather than perturbing an op class it never modelled.
  const bool ckpt = cls == OpClass::kCheckpoint;
  double edge = opts_.crash_rate;
  if (u < edge) return ckpt ? FaultKind::kNone : FaultKind::kCrash;
  edge += opts_.delay_rate;
  if (u < edge) return ckpt ? FaultKind::kNone : FaultKind::kDelay;
  edge += opts_.duplicate_rate;
  if (u < edge) {
    if (ckpt) return FaultKind::kNone;
    // A receive cannot be duplicated by its receiver; the slot
    // degrades to a delay so the schedule stays op-class-stable.
    return cls == OpClass::kSend ? FaultKind::kDuplicate : FaultKind::kDelay;
  }
  edge += opts_.stall_rate;
  if (u < edge) return ckpt ? FaultKind::kNone : FaultKind::kStall;
  edge += opts_.corrupt_payload_rate;
  if (u < edge) {
    if (ckpt) return FaultKind::kNone;
    // Only an outgoing frame can flip in transit; a receive slot
    // degrades to a delay (the kDuplicate precedent).
    return cls == OpClass::kSend ? FaultKind::kCorruptPayload : FaultKind::kDelay;
  }
  edge += opts_.corrupt_checkpoint_rate;
  if (u < edge) return ckpt ? FaultKind::kCorruptCheckpoint : FaultKind::kNone;
  edge += opts_.truncate_spill_rate;
  if (u < edge) return ckpt ? FaultKind::kTruncateSpill : FaultKind::kNone;
  return FaultKind::kNone;
}

FaultKind Injector::next(int rank, OpClass cls) {
  assert(rank >= 0 && rank < nranks_);
  RankSlot& slot = slots_[static_cast<std::size_t>(rank)];
  const std::uint64_t op = slot.ops.fetch_add(1, std::memory_order_relaxed);
  FaultKind k = decide(rank, op, cls);
  if (k == FaultKind::kCrash) {
    if (slot.crashes.load(std::memory_order_relaxed) >= opts_.max_crashes_per_rank)
      return FaultKind::kNone;  // cap reached: the rank stays up
    slot.crashes.fetch_add(1, std::memory_order_relaxed);
  }
  if (k != FaultKind::kNone)
    fired_[static_cast<std::size_t>(k)].fetch_add(1, std::memory_order_relaxed);
  return k;
}

bool Injector::everCrashed(int rank) const {
  return crashCount(rank) > 0;
}

int Injector::crashCount(int rank) const {
  assert(rank >= 0 && rank < nranks_);
  return slots_[static_cast<std::size_t>(rank)].crashes.load(std::memory_order_relaxed);
}

std::uint64_t Injector::opCount(int rank) const {
  assert(rank >= 0 && rank < nranks_);
  return slots_[static_cast<std::size_t>(rank)].ops.load(std::memory_order_relaxed);
}

std::int64_t Injector::fired(FaultKind k) const {
  return fired_[static_cast<std::size_t>(k)].load(std::memory_order_relaxed);
}

std::int64_t Injector::firedTotal() const {
  std::int64_t t = 0;
  for (int k = 1; k < kNumFaultKinds; ++k)
    t += fired_[static_cast<std::size_t>(k)].load(std::memory_order_relaxed);
  return t;
}

FaultKind applyFault(Injector* inj, int rank, OpClass cls, obs::Tracer* tr) {
  if (!inj) return FaultKind::kNone;
  const FaultKind k = inj->next(rank, cls);
  switch (k) {
    case FaultKind::kNone:
      return k;
    case FaultKind::kCrash:
      if (tr) tr->instant(rank, "fault_crash", "fault");
      throw par::RankFailure(rank, "fault::Injector: injected crash on rank " +
                                       std::to_string(rank) + " (seed " +
                                       std::to_string(inj->options().seed) + ", op " +
                                       std::to_string(inj->opCount(rank) - 1) + ")");
    case FaultKind::kDelay:
      if (tr) tr->instant(rank, "fault_delay", "fault");
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          inj->options().delay_ms));
      return k;
    case FaultKind::kDuplicate:
      if (tr) tr->instant(rank, "fault_duplicate", "fault");
      return k;
    case FaultKind::kStall:
      if (tr) tr->instant(rank, "fault_stall", "fault");
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          inj->options().stall_ms));
      return k;
    case FaultKind::kCorruptPayload:
    case FaultKind::kCorruptCheckpoint:
    case FaultKind::kTruncateSpill:
      // The corruption itself happens at the caller (transit hook or
      // checkpoint store); here we only mark the event.
      if (tr)
        tr->instant(rank, std::string("fault_") + faultKindName(k), "fault");
      return k;
  }
  return FaultKind::kNone;
}

}  // namespace msc::fault
