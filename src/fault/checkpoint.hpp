/// \file checkpoint.hpp
/// Per-round checkpoint storage for the threaded pipeline's recovery
/// layer.
///
/// The merge rounds of Algorithm 1 are natural checkpoint boundaries:
/// between rounds every surviving block's complex is quiescent and
/// already has a canonical serialized form (io::pack, the same bytes
/// that travel on the wire). After each successful round every rank
/// stores, keyed by (round, block), the packed bytes of each
/// surviving block it owns; restart/reassignment restores by
/// unpacking those bytes. Because io::pack is a projection
/// (pack(unpack(p)) == p, pinned by tests/test_fault.cpp), a replay
/// from checkpoint re-sends byte-identical messages and re-glues to
/// byte-identical complexes — the recovered output equals the
/// fault-free run's exactly.
///
/// The store is in-memory by default (it stands in for the parallel
/// file system / burst buffer a BG/P-scale run would use) and can
/// additionally spill every checkpoint to a directory, from which a
/// *different* store instance can restore — that path is what a real
/// cross-process restart would exercise, and is covered by tests.
///
/// Thread-safety: all methods are safe to call concurrently from rank
/// threads (one mutex; checkpoint payloads are copied in and out).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "core/annotations.hpp"
#include "io/pack.hpp"

namespace msc::fault {

class CheckpointStore {
 public:
  struct Stats {
    std::int64_t puts = 0;
    std::int64_t restores = 0;        ///< successful get() calls
    std::int64_t bytes_stored = 0;    ///< sum of payload sizes over puts
    std::int64_t spilled_files = 0;   ///< files written to the spill dir
  };

  /// `spill_dir` empty = in-memory only; otherwise every put is also
  /// written to `<spill_dir>/ckpt_r<round>_b<block>.bin` (created if
  /// needed) and get() falls back to reading it, so a fresh store
  /// pointed at the same directory can restore a previous run.
  explicit CheckpointStore(std::string spill_dir = "");

  /// Store the packed complex of `block` at the entry of `round`.
  /// Re-putting the same key overwrites (idempotent replays).
  void put(int round, int block, const io::Bytes& bytes);

  /// Latest checkpoint for (round, block), or nullopt if none exists
  /// in memory or on disk.
  std::optional<io::Bytes> get(int round, int block) const;

  /// True if (round, block) is restorable.
  bool contains(int round, int block) const;

  /// Drop in-memory checkpoints for rounds < `round` (spilled files
  /// are kept: they are the durable medium).
  void dropBelow(int round);

  Stats stats() const;

 private:
  std::string spillPath(int round, int block) const;

  mutable std::mutex mu_;
  std::map<std::pair<int, int>, io::Bytes> mem_ MSC_GUARDED_BY(mu_);
  std::string dir_;  ///< immutable after construction
  mutable Stats stats_ MSC_GUARDED_BY(mu_);
};

}  // namespace msc::fault
