/// \file checkpoint.hpp
/// Per-round checkpoint storage for the threaded pipeline's recovery
/// layer.
///
/// The merge rounds of Algorithm 1 are natural checkpoint boundaries:
/// between rounds every surviving block's complex is quiescent and
/// already has a canonical serialized form (io::pack, the same bytes
/// that travel on the wire). After each successful round every rank
/// stores, keyed by (round, block), the packed bytes of each
/// surviving block it owns; restart/reassignment restores by
/// unpacking those bytes. Because io::pack is a projection
/// (pack(unpack(p)) == p, pinned by tests/test_fault.cpp), a replay
/// from checkpoint re-sends byte-identical messages and re-glues to
/// byte-identical complexes — the recovered output equals the
/// fault-free run's exactly.
///
/// The store is in-memory by default (it stands in for the parallel
/// file system / burst buffer a BG/P-scale run would use) and can
/// additionally spill every checkpoint to a directory, from which a
/// *different* store instance can restore — that path is what a real
/// cross-process restart would exercise, and is covered by tests.
///
/// Thread-safety: all methods are safe to call concurrently from rank
/// threads (one mutex; checkpoint payloads are copied in and out).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "core/annotations.hpp"
#include "io/pack.hpp"

namespace msc::integrity {
class Monitor;
}
namespace msc::obs {
class Tracer;
}

namespace msc::fault {

class Injector;

class CheckpointStore {
 public:
  struct Stats {
    std::int64_t puts = 0;
    std::int64_t restores = 0;        ///< successful get() calls
    std::int64_t bytes_stored = 0;    ///< sum of payload sizes over puts
    std::int64_t spilled_files = 0;   ///< files written to the spill dir
    std::int64_t corrupt_detected = 0;  ///< entries that failed their checksum
    std::int64_t healed_from_disk = 0;  ///< corrupt mem entries repaired from spill
  };

  /// Integrity policy (see src/integrity/). All pointers non-owning;
  /// the default (everything off/null) keeps prior byte formats and
  /// behaviour exactly.
  struct IntegritySetup {
    /// Wrap every stored entry (memory and spill) in a checksummed
    /// integrity container; get() verifies before returning and heals
    /// a corrupt in-memory copy from the spill when possible. A store
    /// with checksums on cannot read spills written with them off
    /// (they fail validation) -- flip the knob per run, not per call.
    bool checksums = false;
    /// Deterministic corruption injection at put() time
    /// (OpClass::kCheckpoint): kCorruptCheckpoint flips one bit of
    /// the in-memory copy after the (good) spill is written -- the
    /// DRAM-flip model; kTruncateSpill tears the spilled file instead
    /// and leaves memory intact -- the torn-write model.
    Injector* injector = nullptr;
    /// Tallies verified/failed/healed per rank.
    integrity::Monitor* monitor = nullptr;
    /// Fault instants for injected corruption.
    obs::Tracer* tracer = nullptr;
  };

  /// `spill_dir` empty = in-memory only; otherwise every put is also
  /// written to `<spill_dir>/ckpt_r<round>_b<block>.bin` (created if
  /// needed) and get() falls back to reading it, so a fresh store
  /// pointed at the same directory can restore a previous run.
  explicit CheckpointStore(std::string spill_dir = "");

  /// Install the integrity policy. Call before any put/get traffic
  /// (not thread-safe against concurrent access; the drivers call it
  /// during setup).
  void configureIntegrity(const IntegritySetup& setup);

  /// Store the packed complex of `block` at the entry of `round`.
  /// Re-putting the same key overwrites (idempotent replays). `rank`
  /// feeds the integrity injector/monitor; ignored otherwise.
  void put(int round, int block, const io::Bytes& bytes, int rank = 0);

  /// Latest checkpoint for (round, block), or nullopt if none exists
  /// in memory or on disk. With checksums on, a corrupt in-memory
  /// copy is healed from the spill when the spilled bytes validate;
  /// an unhealable entry (both copies bad, or the only copy bad)
  /// returns nullopt exactly like a missing one, so every caller's
  /// missing-checkpoint path doubles as the corruption path. `rank`
  /// feeds the monitor tallies.
  std::optional<io::Bytes> get(int round, int block, int rank = 0) const;

  /// True if (round, block) is restorable.
  bool contains(int round, int block) const;

  /// Drop in-memory checkpoints for rounds < `round` (spilled files
  /// are kept: they are the durable medium).
  void dropBelow(int round);

  Stats stats() const;

 private:
  std::string spillPath(int round, int block) const;
  /// Read + (when checksums are on) validate and unwrap the spilled
  /// entry; nullopt when absent, torn, or corrupt.
  std::optional<io::Bytes> readSpill(int round, int block, int rank) const
      MSC_REQUIRES(mu_);

  mutable std::mutex mu_;
  // mutable: get() heals a corrupt in-memory entry from the spill.
  mutable std::map<std::pair<int, int>, io::Bytes> mem_ MSC_GUARDED_BY(mu_);
  std::string dir_;            ///< immutable after construction
  IntegritySetup integrity_;   ///< immutable after configureIntegrity
  mutable Stats stats_ MSC_GUARDED_BY(mu_);
};

}  // namespace msc::fault
