#include "fault/recovery.hpp"

#include <cassert>

namespace msc::fault {

const char* recoveryModeName(RecoveryMode m) {
  switch (m) {
    case RecoveryMode::kOff: return "off";
    case RecoveryMode::kRespawn: return "respawn";
    case RecoveryMode::kDegrade: return "degrade";
  }
  return "unknown";
}

int ownerOf(int block, int nranks, const std::vector<bool>& dead) {
  assert(block >= 0 && nranks >= 1);
  const int home = block % nranks;
  if (dead.empty() || !dead[static_cast<std::size_t>(home)]) return home;
  std::vector<int> live;
  live.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    if (!dead[static_cast<std::size_t>(r)]) live.push_back(r);
  assert(!live.empty());  // callers guard the no-survivors case
  return live[static_cast<std::size_t>(block) % live.size()];
}

Coordinator::Coordinator(int nranks, RecoveryMode mode, CheckpointStore* store)
    : dead_(static_cast<std::size_t>(nranks), false),
      entries_(static_cast<std::size_t>(nranks), 0),
      mode_(mode),
      nranks_(nranks),
      store_(store) {
  assert(nranks >= 1 && store != nullptr);
}

Coordinator::Position Coordinator::position() const {
  const std::lock_guard lock(mu_);
  return pos_;
}

void Coordinator::advanceTo(int round, int attempt) {
  const std::lock_guard lock(mu_);
  if (round > pos_.round || (round == pos_.round && attempt > pos_.attempt)) {
    pos_.round = round;
    pos_.attempt = attempt;
  }
}

void Coordinator::setFinished() {
  const std::lock_guard lock(mu_);
  pos_.finished = true;
}

void Coordinator::markDead(int rank) {
  const std::lock_guard lock(mu_);
  dead_[static_cast<std::size_t>(rank)] = true;
}

bool Coordinator::isDead(int rank) const {
  const std::lock_guard lock(mu_);
  return dead_[static_cast<std::size_t>(rank)];
}

std::vector<bool> Coordinator::deadMask() const {
  const std::lock_guard lock(mu_);
  return dead_;
}

int Coordinator::liveCount() const {
  const std::lock_guard lock(mu_);
  int n = 0;
  for (const bool d : dead_)
    if (!d) ++n;
  return n;
}

int Coordinator::noteEntry(int rank) {
  const std::lock_guard lock(mu_);
  return entries_[static_cast<std::size_t>(rank)]++;
}

std::int64_t Coordinator::respawns() const {
  const std::lock_guard lock(mu_);
  std::int64_t n = 0;
  for (const int e : entries_) n += e > 0 ? e - 1 : 0;
  return n;
}

}  // namespace msc::fault
